"""Factories for the standard instance families of the paper.

Three families cover every experiment:

* :func:`planted_instance` — the unit-cost, local-testing world of
  Section 4: good objects have value 1, bad ones value 0, the threshold is
  1/2.
* :func:`valued_instance` — the no-local-testing world of Section 5.3:
  continuous values, goodness = top ``β·m`` values, no threshold exposed.
* :func:`cost_class_instance` — the multiple-costs world of Theorem 12:
  costs are powers of two grouped into classes ``[2^i, 2^(i+1))``.

All factories take a :class:`numpy.random.Generator` so that worlds are
reproducible and independent of strategy/adversary randomness.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.world.instance import Instance, roles_from_alpha
from repro.world.objects import ObjectSpace


def _plant_good(m: int, n_good: int, rng: np.random.Generator) -> np.ndarray:
    """Random good mask with exactly ``n_good`` good objects."""
    if not 1 <= n_good <= m:
        raise ConfigurationError(
            f"need 1 <= n_good <= m, got n_good={n_good}, m={m}"
        )
    mask = np.zeros(m, dtype=bool)
    mask[rng.choice(m, size=n_good, replace=False)] = True
    return mask


def planted_instance(
    n: int,
    m: int,
    beta: float,
    alpha: float,
    rng: np.random.Generator,
    shuffle_roles: bool = True,
) -> Instance:
    """Unit-cost local-testing instance with 0/1 values.

    ``round(beta * m)`` objects (at least one) are planted good with value
    1.0; the rest are bad with value 0.0. The local test is
    ``value >= 0.5``. Honest roles are a random ``round(alpha * n)``-subset.
    """
    if not 0 < beta <= 1:
        raise ConfigurationError(f"beta must be in (0, 1], got {beta}")
    n_good = max(1, int(round(beta * m)))
    good = _plant_good(m, n_good, rng)
    values = np.where(good, 1.0, 0.0)
    costs = np.ones(m, dtype=np.float64)
    space = ObjectSpace(values, costs, good, good_threshold=0.5)
    mask = roles_from_alpha(n, alpha, rng=rng, shuffle=shuffle_roles)
    return Instance(space, mask)


def valued_instance(
    n: int,
    m: int,
    beta: float,
    alpha: float,
    rng: np.random.Generator,
    shuffle_roles: bool = True,
) -> Instance:
    """No-local-testing instance with continuous values (Section 5.3).

    Values are i.i.d. uniform on (0, 1); the good set is the top
    ``round(beta * m)`` values. No threshold is exposed, so strategies must
    use the no-local-testing machinery (votes are best-so-far).
    """
    if not 0 < beta <= 1:
        raise ConfigurationError(f"beta must be in (0, 1], got {beta}")
    values = rng.random(m)
    n_good = max(1, int(round(beta * m)))
    order = np.argsort(-values, kind="stable")
    good = np.zeros(m, dtype=bool)
    good[order[:n_good]] = True
    costs = np.ones(m, dtype=np.float64)
    space = ObjectSpace(values, costs, good, good_threshold=None)
    mask = roles_from_alpha(n, alpha, rng=rng, shuffle=shuffle_roles)
    return Instance(space, mask)


def cost_class_instance(
    n: int,
    class_sizes: Sequence[int],
    good_class: int,
    alpha: float,
    rng: np.random.Generator,
    goods_in_class: int = 1,
    shuffle_roles: bool = True,
) -> Instance:
    """Multiple-costs instance for Theorem 12.

    ``class_sizes[i]`` objects are created with cost ``2**i`` (so class
    ``i`` in the paper's sense, cost in ``[2^i, 2^(i+1))``). Exactly
    ``goods_in_class`` good objects (value 1.0) are planted uniformly in
    class ``good_class``; every other object is bad (value 0.0). The
    cheapest good object therefore costs ``q0 = 2**good_class``.
    """
    if not class_sizes:
        raise ConfigurationError("need at least one cost class")
    if not 0 <= good_class < len(class_sizes):
        raise ConfigurationError(
            f"good_class {good_class} outside [0, {len(class_sizes)})"
        )
    if goods_in_class < 1 or goods_in_class > class_sizes[good_class]:
        raise ConfigurationError(
            f"goods_in_class={goods_in_class} does not fit in class "
            f"{good_class} of size {class_sizes[good_class]}"
        )
    costs_list = []
    for klass, size in enumerate(class_sizes):
        if size < 0:
            raise ConfigurationError("class sizes must be non-negative")
        costs_list.append(np.full(size, 2.0 ** klass))
    costs = np.concatenate(costs_list)
    m = costs.shape[0]
    class_start = int(np.sum([class_sizes[i] for i in range(good_class)]))
    good = np.zeros(m, dtype=bool)
    chosen = rng.choice(
        class_sizes[good_class], size=goods_in_class, replace=False
    )
    good[class_start + np.asarray(chosen, dtype=np.int64)] = True
    values = np.where(good, 1.0, 0.0)
    space = ObjectSpace(values, costs, good, good_threshold=0.5)
    mask = roles_from_alpha(n, alpha, rng=rng, shuffle=shuffle_roles)
    return Instance(space, mask)


def explicit_instance(
    values: np.ndarray,
    good_mask: np.ndarray,
    honest_mask: np.ndarray,
    costs: Optional[np.ndarray] = None,
    good_threshold: Optional[float] = None,
) -> Instance:
    """Wrap explicit arrays into an :class:`Instance` (tests, lower bounds)."""
    values = np.asarray(values, dtype=np.float64)
    if costs is None:
        costs = np.ones_like(values)
    space = ObjectSpace(values, costs, good_mask, good_threshold=good_threshold)
    return Instance(space, np.asarray(honest_mask, dtype=bool))
