"""World model: objects, their values/costs, and problem instances.

The paper's world (Section 2) consists of ``m`` objects, each with an
unknown *value* and a known *cost*, partitioned into good and bad, and ``n``
players of which an ``α`` fraction are honest. This package provides:

* :class:`~repro.world.objects.ObjectSpace` — values, costs, and the good
  set, with the local-testing predicate;
* :mod:`~repro.world.valuemodel` — per-player observation functions (the
  Theorem 2 adversary "reports the values dictated by the adversarial
  strategy"; we model that as a spoofed observation);
* :class:`~repro.world.instance.Instance` — an object space plus the
  honest/dishonest role assignment;
* :mod:`~repro.world.generators` — factories for the standard instance
  families used throughout the experiments.
"""

from repro.world.instance import Instance
from repro.world.objects import ObjectSpace
from repro.world.playerstate import (
    MEMMAP_THRESHOLD,
    finalize_player_array,
    player_array,
)
from repro.world.valuemodel import (
    SpoofedValueModel,
    TrueValueModel,
    ValueModel,
)
from repro.world.generators import (
    cost_class_instance,
    planted_instance,
    valued_instance,
)

__all__ = [
    "Instance",
    "MEMMAP_THRESHOLD",
    "ObjectSpace",
    "SpoofedValueModel",
    "finalize_player_array",
    "player_array",
    "TrueValueModel",
    "ValueModel",
    "cost_class_instance",
    "planted_instance",
    "valued_instance",
]
