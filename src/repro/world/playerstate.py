"""Per-player working arrays that scale to million-player worlds.

The engines keep a handful of ``(n,)`` (or ``(K, n)``) working arrays per
run — satisfaction rounds, probe counters, churn timers. At the paper's
original n ≤ 4096 these are noise; at n = 10^6 each int64 array is 8 MB
and a batched run multiplies that by K lanes. Two levers keep them cheap:

* **Lazy zero pages.** :func:`player_array` allocates small arrays as
  ordinary ndarrays, but above :data:`MEMMAP_THRESHOLD` elements it backs
  the array with an anonymous (unlinked) temp-file ``np.memmap``. Pages
  materialize only when touched, so an idle player's slot in a
  fill-initialized array costs address space, not resident memory — and
  the kernel may reclaim cold pages under pressure instead of swapping.
* **Plain finalization.** :func:`finalize_player_array` converts any
  memmap-backed working array into an ordinary in-memory ndarray before
  it escapes the engine (e.g. into ``RunMetrics``), so results never
  reference engine-lifetime temp files and pickle across process
  boundaries exactly like before.

Both levers are representation-only: values, dtypes, and shapes are
identical either way, so the substrate choice is bit-inert by
construction.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional, Tuple, Union

import numpy as np

#: arrays at or above this many elements are memmap-backed (2^19 — a
#: 4 MB int64 array; everything the small-n test suite touches stays
#: ordinary ndarray, while 10^5-player batched state and 10^6-player
#: scalar state go through the mapping)
MEMMAP_THRESHOLD = 1 << 19

_Shape = Union[int, Tuple[int, ...]]


def _n_elements(shape: _Shape) -> int:
    if isinstance(shape, int):
        return shape
    total = 1
    for dim in shape:
        total *= int(dim)
    return total


def player_array(
    shape: _Shape,
    fill_value: Union[int, float, bool],
    dtype: "np.typing.DTypeLike",
    threshold: Optional[int] = None,
) -> np.ndarray:
    """Allocate a per-player working array, memmap-backed when large.

    Below ``threshold`` elements (default :data:`MEMMAP_THRESHOLD`) this
    is exactly ``np.full(shape, fill_value, dtype)``. At or above it,
    the array is an ``np.memmap`` over an unlinked temporary file:
    identical values and dtype, but pages are materialized on first
    touch and the backing file needs no cleanup — the OS reclaims it
    when the array is garbage collected.

    The fill is written through a chunked loop (not one giant
    assignment) only when the fill value is non-zero; zero fills rely on
    the kernel's zero pages and touch nothing.
    """
    limit = MEMMAP_THRESHOLD if threshold is None else int(threshold)
    n_elements = _n_elements(shape)
    if n_elements < limit:
        return np.full(shape, fill_value, dtype=dtype)
    handle, path = tempfile.mkstemp(prefix="repro-playerstate-")
    try:
        array = np.memmap(path, dtype=dtype, mode="w+", shape=shape)
    finally:
        os.close(handle)
        os.unlink(path)  # POSIX: the mapping keeps the inode alive
    if fill_value:
        flat = array.reshape(-1)
        chunk = 1 << 22
        for start in range(0, n_elements, chunk):
            flat[start : start + chunk] = fill_value
    return array


def finalize_player_array(array: np.ndarray) -> np.ndarray:
    """Return an ordinary in-memory ndarray with the same contents.

    Ordinary ndarrays pass through untouched; memmap-backed arrays are
    copied out so nothing downstream (metrics, pickles, checkpoints)
    holds a reference to an engine-lifetime temp-file mapping.
    """
    if isinstance(array, np.memmap):
        return np.array(array)
    return array
