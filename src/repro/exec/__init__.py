"""The fault-tolerant trial execution fabric.

``repro.exec`` owns *where* trials run; :func:`repro.sim.runner.run_trials`
owns *what* runs. Three backends implement the
:class:`~repro.exec.base.Executor` protocol:

* :class:`~repro.exec.serial.SerialExecutor` — in-process, the
  correctness reference and the terminal fallback;
* :class:`~repro.exec.local.LocalPoolExecutor` — the forked process
  pool (the runner's original parallel path), with deterministic
  broken-pool recovery;
* :class:`~repro.exec.sockets.SocketWorkerExecutor` — TCP workers
  (forked locally or launched externally via
  ``python -m repro.exec.worker``), with lease-based ownership,
  heartbeat timeouts, and exact-seed redispatch of lost chunks.

Shared machinery: :class:`~repro.exec.retry.RetryPolicy` (deterministic
capped exponential backoff), :func:`~repro.exec.base.execute_with_fallback`
(the socket → local pool → serial degradation chain),
:func:`~repro.exec.deadline.trial_deadline` (monotonic-deadline trial
cancellation on any thread), and :mod:`repro.exec.chaos` (deterministic
worker kills/stalls/partitions for testing the fabric itself).

See ``docs/robustness.md`` ("The executor fabric") for the operational
guide and ``docs/performance.md`` for the backend table.
"""

from repro.exec.base import (
    Executor,
    ExecutorReport,
    build_chunks,
    execute_with_fallback,
)
from repro.exec.chaos import ChaosAction, ChaosMonkey, ChaosPlan
from repro.exec.deadline import trial_deadline
from repro.exec.local import LocalPoolExecutor
from repro.exec.retry import RetryPolicy
from repro.exec.serial import SerialExecutor
from repro.exec.sockets import SocketWorkerExecutor, fork_launcher

#: the CLI/env-selectable backend names, in degradation order
EXECUTOR_NAMES = ("socket", "local", "serial")

__all__ = [
    "ChaosAction",
    "ChaosMonkey",
    "ChaosPlan",
    "EXECUTOR_NAMES",
    "Executor",
    "ExecutorReport",
    "LocalPoolExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "SocketWorkerExecutor",
    "build_chunks",
    "execute_with_fallback",
    "fork_launcher",
    "trial_deadline",
]
