"""Deterministic chaos injection for the executor fabric.

The simulation layer tests its fault tolerance with :mod:`repro.faults`
— deterministic injectors on a pinned rng stream. This module is the
same idea one level down: it attacks the *execution fabric itself*, so
the fabric's recovery machinery (leases, redispatch, respawn budgets)
is exercised by tests rather than trusted.

A :class:`ChaosPlan` is a frozen description of misbehaviour rates; a
:class:`ChaosMonkey` turns the plan into concrete per-task decisions
for one worker, drawn from a generator seeded by
``(plan.seed, worker_index)`` tuple entropy. Determinism is the whole
point: the chaos equivalence test asserts that a run under injected
kills/stalls/partitions produces :class:`~repro.sim.metrics.RunMetrics`
bit-identical to a serial run, and that assertion is only meaningful if
the kills land in the same place every time.

Decisions are drawn once per *task dispatch*, in dispatch order, so a
worker's fate depends only on the plan seed, its worker index, and how
many tasks it has been handed — never on timing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.errors import ConfigurationError
from repro.rng import make_generator, make_seed_sequence


class ChaosAction(str, Enum):
    """What a :class:`ChaosMonkey` tells a worker to do with one task."""

    #: run the task normally
    NONE = "none"
    #: hard-exit the worker process mid-task (``os._exit``)
    KILL = "kill"
    #: sleep with heartbeats *suspended*, long enough to blow the lease
    STALL = "stall"
    #: close the dispatcher connection without exiting (a network split)
    PARTITION = "partition"


@dataclass(frozen=True)
class ChaosPlan:
    """Frozen description of how chaos-afflicted workers misbehave.

    Attributes
    ----------
    kill_rate, stall_rate, partition_rate:
        Per-task-dispatch probabilities of each misbehaviour; their sum
        must not exceed 1. A single uniform draw per dispatch picks at
        most one action, so rates compose without interaction.
    stall_seconds:
        How long a stalled worker sleeps with heartbeats suspended.
        Point it past the fabric's lease timeout or the stall is a nap,
        not a fault.
    max_events:
        Cap on how many workers misbehave at all: workers whose spawn
        ordinal is ``>= max_events`` run chaos-free. This keeps a
        chaos run *recoverable* — replacement workers spawned after the
        budget is spent are reliable, so redispatched chunks complete.
        ``None`` means every worker draws from the plan.
    seed:
        Root entropy for every monkey this plan mints.
    """

    kill_rate: float = 0.0
    stall_rate: float = 0.0
    partition_rate: float = 0.0
    stall_seconds: float = 2.0
    max_events: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("kill_rate", "stall_rate", "partition_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        total = self.kill_rate + self.stall_rate + self.partition_rate
        if total > 1.0:
            raise ConfigurationError(
                f"chaos rates must sum to at most 1, got {total}"
            )
        if self.stall_seconds < 0:
            raise ConfigurationError(
                f"stall_seconds must be >= 0, got {self.stall_seconds}"
            )
        if self.max_events is not None and self.max_events < 0:
            raise ConfigurationError(
                f"max_events must be >= 0 or None, got {self.max_events}"
            )

    def is_null(self) -> bool:
        """Whether this plan can never produce a misbehaviour."""
        return (
            self.kill_rate == 0.0
            and self.stall_rate == 0.0
            and self.partition_rate == 0.0
        ) or self.max_events == 0

    def monkey_for(self, worker_index: int) -> "ChaosMonkey":
        """The deterministic monkey riding worker ``worker_index``.

        ``worker_index`` is the worker's *spawn ordinal* across the
        whole run (replacements keep counting up), so a respawned
        worker draws a fresh, still-deterministic stream rather than
        replaying its predecessor's fate.
        """
        return ChaosMonkey(self, worker_index)


class ChaosMonkey:
    """Per-worker decision stream derived from a :class:`ChaosPlan`.

    The stream is seeded with ``(plan.seed, worker_index)`` tuple
    entropy — :class:`numpy.random.SeedSequence` composition, never seed
    arithmetic — so monkeys for different workers are independent and
    every monkey is replayable.
    """

    def __init__(self, plan: ChaosPlan, worker_index: int) -> None:
        if worker_index < 0:
            raise ConfigurationError(
                f"worker_index must be >= 0, got {worker_index}"
            )
        self.plan = plan
        self.worker_index = worker_index
        self._rng = make_generator(
            make_seed_sequence((plan.seed, worker_index))
        )
        self._muzzled = (
            plan.max_events is not None and worker_index >= plan.max_events
        )

    def decide(self) -> ChaosAction:
        """Draw the action for the next task dispatch.

        A muzzled monkey (spawn ordinal past ``max_events``) still
        *advances its rng* so the decision stream for a given worker
        index never depends on the plan's cap — only whether the action
        is acted on does.
        """
        draw = float(self._rng.random())
        if self._muzzled:
            return ChaosAction.NONE
        plan = self.plan
        if draw < plan.kill_rate:
            return ChaosAction.KILL
        if draw < plan.kill_rate + plan.stall_rate:
            return ChaosAction.STALL
        if draw < plan.kill_rate + plan.stall_rate + plan.partition_rate:
            return ChaosAction.PARTITION
        return ChaosAction.NONE

    def preview(self, count: int) -> "list[ChaosAction]":
        """The next ``count`` decisions of a *fresh copy* of this monkey.

        Tests use this to find seeds with a wanted fate pattern (e.g.
        "first dispatch clean, second dispatch kill") without consuming
        this monkey's own stream.
        """
        twin = ChaosMonkey(self.plan, self.worker_index)
        return [twin.decide() for _ in range(count)]
