"""The local fork-pool executor (the runner's original parallel path).

Absorbs what used to be ``repro.sim.runner._run_parallel``: fan chunks
out over a forked :class:`~concurrent.futures.ProcessPoolExecutor`,
harvest completed chunks as they land (so checkpoints survive a later
chunk killing its worker), and on ``BrokenProcessPool`` rebuild the
pool and re-submit only the unfinished chunks — each chunk carries its
pre-derived seed sequences, so a retried trial replays the exact
stream of its first attempt. Retry budget and backoff now come from
the shared :class:`~repro.exec.retry.RetryPolicy`; when the budget is
spent the executor raises :class:`~repro.errors.ExecutorError` with
its partial results, and the degradation chain (see
:func:`~repro.exec.base.execute_with_fallback`) finishes the
remainder serially.

Factories are closures and do not pickle; like the original, the pool
uses the ``fork`` start method and parks the worker state in
``repro.sim.runner._WORKER_STATE`` just before forking, so children
inherit it by memory snapshot and only seeds cross the pickle channel.
When a pool is not viable — one job, one pending trial, or no ``fork``
on this platform — the executor simply runs the chunks in-process, so
``LocalPoolExecutor`` is safe as a default anywhere.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ExecutorError
from repro.exec.base import (
    ChunkCallback,
    Executor,
    IndexedSeed,
    ResultMap,
    build_chunks,
)
from repro.exec.retry import RetryPolicy


class LocalPoolExecutor(Executor):
    """Forked process pool with deterministic broken-pool recovery."""

    name = "local"

    def __init__(
        self,
        n_jobs: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__()
        self.n_jobs = n_jobs
        self.retry = retry if retry is not None else RetryPolicy()

    # ------------------------------------------------------------------
    def run(
        self,
        pending: Sequence[IndexedSeed],
        state: Dict[str, Any],
        *,
        chunk_size: Optional[int] = None,
        on_chunk_done: Optional[ChunkCallback] = None,
    ) -> ResultMap:
        import repro.sim.runner as runner

        jobs = runner.resolve_n_jobs(self.n_jobs)
        pool_viable = (
            jobs > 1
            and len(pending) > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )
        lanes = state.get("batch_lanes", 1) or 1
        obs = state.get("obs")
        results: ResultMap = {}

        def harvest(outcome: Any) -> None:
            pairs, snapshot = outcome
            if snapshot is not None and obs is not None:
                obs.merge(snapshot)
            results.update(pairs)
            if on_chunk_done is not None:
                on_chunk_done(pairs)

        if not pool_viable:
            # Degenerate pool: run the chunks in-process. Not an error —
            # a 1-core host asking for the local backend should work.
            step = lanes if lanes > 1 else 1
            for start in range(0, len(pending), step):
                harvest(
                    (
                        runner._run_serial_chunk(
                            list(pending[start : start + step]), state
                        ),
                        None,
                    )
                )
            return results

        remaining = build_chunks(pending, jobs, chunk_size, lanes)
        context = multiprocessing.get_context("fork")
        attempt = 0
        previous = runner._WORKER_STATE
        runner._WORKER_STATE = state
        try:
            while remaining:
                workers = min(jobs, len(remaining))
                self.report.workers.extend(
                    f"w{len(self.report.workers) + i}" for i in range(workers)
                )
                try:
                    with ProcessPoolExecutor(
                        max_workers=workers, mp_context=context
                    ) as pool:
                        futures = {
                            pool.submit(runner._run_trial_chunk, chunk): chunk
                            for chunk in remaining
                        }
                        for future in as_completed(futures):
                            harvest(future.result())
                    remaining = []
                except BrokenProcessPool:
                    remaining = [
                        chunk
                        for chunk in remaining
                        if any(
                            index not in results for index, _seed in chunk
                        )
                    ]
                    attempt += 1
                    self.report.worker_losses += 1
                    if obs is not None:
                        obs.counter("exec.worker_lost").add()
                    if not self.retry.allows(attempt):
                        raise ExecutorError(
                            f"process pool died {attempt} time(s)",
                            completed=results,
                        ) from None
                    self.report.retries += 1
                    if obs is not None:
                        obs.counter("exec.retries").add()
                    self.retry.sleep(attempt)
        finally:
            runner._WORKER_STATE = previous
        return results
