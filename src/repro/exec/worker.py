"""The socket-fabric worker: ``python -m repro.exec.worker``.

A worker connects to a :class:`~repro.exec.sockets.SocketWorkerExecutor`
dispatcher, authenticates with the run token, and then executes task
frames until told goodbye. The same :func:`run_worker` loop serves both
deployment modes:

* **forked** (the default launcher) — the dispatcher forks this process
  from the running sweep, so the worker inherits the trial factories via
  ``repro.sim.runner._WORKER_STATE`` exactly like a pool worker; only
  seeds cross the wire.
* **external** (``python -m repro.exec.worker --connect HOST:PORT
  --token TOKEN``, e.g. launched over SSH) — the worker receives the
  pickled worker state in its welcome frame, which requires the sweep's
  factories to be picklable (module-level functions, not closures).

While a task runs, a daemon thread heartbeats the dispatcher to renew
the chunk lease. A worker assigned a :class:`~repro.exec.chaos.ChaosPlan`
consults its deterministic :class:`~repro.exec.chaos.ChaosMonkey` once
per task dispatch and misbehaves as instructed — hard exit, heartbeat-
suspended stall, or connection drop — which is how the fabric's
recovery machinery gets tested rather than trusted.
"""

from __future__ import annotations

import argparse
import os
import socket
import sys
import threading
import time
from typing import Optional

from repro.errors import ExecutorError, ReproError
from repro.exec.chaos import ChaosAction, ChaosMonkey
from repro.exec.protocol import ConnectionClosed, recv_frame, send_frame

#: exit code of a chaos-killed worker (distinguishable from crashes in
#: process listings and tests)
CHAOS_KILL_EXIT = 17


def run_worker(
    host: str,
    port: int,
    token: str,
    inherit_state: bool = True,
    connect_timeout: float = 30.0,
) -> None:
    """Connect to a dispatcher and serve task frames until ``bye``.

    ``inherit_state=True`` declares that this process already carries
    the worker state (it was forked from the sweep); ``False`` asks the
    dispatcher to ship the state in the welcome frame.
    """
    import repro.sim.runner as runner

    sock = socket.create_connection((host, port), timeout=connect_timeout)
    sock.settimeout(None)
    stop: Optional[threading.Event] = None
    try:
        send_frame(
            sock,
            "hello",
            {"token": token, "pid": os.getpid(), "inherit": inherit_state},
        )
        kind, body = recv_frame(sock)
        if kind == "error":
            raise ExecutorError(f"dispatcher refused worker: {body}")
        if kind != "welcome":
            raise ExecutorError(
                f"expected a welcome frame, got {kind!r}"
            )
        ordinal = int(body["worker"])
        heartbeat_interval = float(body["heartbeat_interval"])
        plan = body.get("chaos")
        shipped_state = body.get("state")
        if shipped_state is not None:
            runner._WORKER_STATE = shipped_state
        elif not inherit_state:
            raise ExecutorError(
                "dispatcher shipped no worker state to an external worker"
            )
        monkey: Optional[ChaosMonkey] = (
            plan.monkey_for(ordinal) if plan is not None else None
        )

        send_lock = threading.Lock()
        heartbeats_on = threading.Event()
        heartbeats_on.set()
        stop = threading.Event()

        def _beat() -> None:
            while not stop.wait(heartbeat_interval):
                if not heartbeats_on.is_set():
                    continue
                try:
                    with send_lock:
                        send_frame(sock, "heartbeat")
                except OSError:
                    return

        threading.Thread(
            target=_beat, name=f"repro-exec-heartbeat-w{ordinal}", daemon=True
        ).start()

        while True:
            try:
                kind, body = recv_frame(sock)
            except ConnectionClosed:
                return  # dispatcher is gone; nothing left to report to
            if kind == "bye":
                return
            if kind != "task":
                continue  # unknown frames are ignored for forward compat
            if monkey is not None:
                action = monkey.decide()
                if action is ChaosAction.KILL:
                    # a hard crash mid-task: no goodbye, no flush
                    os._exit(CHAOS_KILL_EXIT)
                if action is ChaosAction.PARTITION:
                    # the network splits but the process lives on; from
                    # the dispatcher's side this is indistinguishable
                    # from a crash (EOF on the connection)
                    sock.close()
                    return
                if action is ChaosAction.STALL:
                    # hang with heartbeats suspended, long enough for
                    # the lease to expire and the chunk to be
                    # redispatched; then recover and answer late — the
                    # dispatcher must deduplicate
                    heartbeats_on.clear()
                    time.sleep(monkey.plan.stall_seconds)
                    heartbeats_on.set()
            try:
                pairs, snapshot = runner._run_trial_chunk(body["chunk"])
            except ReproError as exc:
                # a deterministic trial failure (timeout, bad config):
                # redispatch would fail identically, so ship it home to
                # abort the sweep instead of retrying
                with send_lock:
                    send_frame(
                        sock,
                        "trial_error",
                        {"chunk": body["chunk_id"], "error": exc},
                    )
                continue
            with send_lock:
                send_frame(
                    sock,
                    "result",
                    {
                        "chunk": body["chunk_id"],
                        "pairs": pairs,
                        "obs": snapshot,
                    },
                )
    finally:
        if stop is not None:
            stop.set()
        sock.close()


def build_parser() -> argparse.ArgumentParser:
    """The worker CLI parser (importable so docs tests can pin flags)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.worker",
        description=(
            "Connect to a running SocketWorkerExecutor dispatcher and "
            "execute trial chunks until released."
        ),
    )
    parser.add_argument(
        "--connect",
        required=True,
        metavar="HOST:PORT",
        help="dispatcher address printed/configured by the sweep",
    )
    parser.add_argument(
        "--token",
        default=os.environ.get("REPRO_EXEC_TOKEN"),
        help=(
            "run authentication token (default: the REPRO_EXEC_TOKEN "
            "environment variable)"
        ),
    )
    return parser


def main(argv: Optional[list] = None) -> int:
    """CLI entry point for external (e.g. SSH-launched) workers."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if not args.token:
        parser.error("--token (or REPRO_EXEC_TOKEN) is required")
    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error(f"--connect must be HOST:PORT, got {args.connect!r}")
    try:
        run_worker(host, int(port_text), args.token, inherit_state=False)
    except (ExecutorError, OSError) as exc:
        print(f"worker failed: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
