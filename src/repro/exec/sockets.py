"""The socket-worker executor: lease-based dispatch over TCP.

This is the fabric's distributed backend. The dispatcher (this class,
running inside the sweep process) listens on a TCP port; workers —
forked locally by the default launcher, or started externally with
``python -m repro.exec.worker`` (e.g. over an SSH tunnel) — connect,
authenticate with a per-run token, and pull chunks of pre-derived
``(trial index, SeedSequence)`` units.

Robustness model, in the spirit of the paper's premise that progress
must survive Byzantine participants:

* **leases** — every assignment carries a monotonic deadline, renewed
  by worker heartbeats. A worker that stops heartbeating (stalled,
  partitioned, wedged) loses its lease; the chunk is requeued and
  *redispatched with the exact same seeds*, so the retried execution is
  bit-identical and the late original — if it ever arrives — is merely
  a duplicate, deduplicated by chunk id.
* **crash detection** — a dropped connection (EOF) is a lost worker:
  its chunk is requeued immediately and a replacement is spawned,
  budgeted by the shared :class:`~repro.exec.retry.RetryPolicy`.
* **bounded failure** — when every worker is gone and the respawn
  budget is spent, the executor raises
  :class:`~repro.errors.ExecutorError` carrying everything it did
  finish, and the degradation chain (socket → local pool → serial)
  takes over the remainder.
* **determinism** — none of this machinery touches a random stream.
  Which worker ran which chunk can vary run to run; the *results*
  cannot, because a trial is a pure function of its pre-derived seed.

Every recovery event is counted (``exec.worker_lost``,
``exec.reassigned``, ``exec.retries``) and logged in the
:class:`~repro.exec.base.ExecutorReport` that lands in the run's
manifest, so a sweep that survived chaos says so in its provenance.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, ExecutorError
from repro.exec.base import (
    ChunkCallback,
    Executor,
    IndexedSeed,
    ResultMap,
    build_chunks,
)
from repro.exec.chaos import ChaosPlan
from repro.exec.protocol import ProtocolError, recv_frame, send_frame
from repro.exec.retry import RetryPolicy

#: a launcher starts one worker aimed at (host, port, token); it returns
#: a process-like handle (``terminate``/``join``) or ``None``
Launcher = Callable[[str, int, str, int], Any]


def fork_launcher(host: str, port: int, token: str, ordinal: int) -> Any:
    """The default launcher: fork a worker from the sweep process.

    Forked workers inherit ``repro.sim.runner._WORKER_STATE`` by memory
    snapshot (set by :meth:`SocketWorkerExecutor.run` before spawning),
    so closures work and nothing but seeds crosses the wire — the same
    trick the local pool uses.
    """
    from repro.exec.worker import run_worker

    context = multiprocessing.get_context("fork")
    process = context.Process(
        target=run_worker,
        kwargs=dict(host=host, port=port, token=token, inherit_state=True),
        name=f"repro-exec-worker-{ordinal}",
        daemon=True,
    )
    process.start()
    return process


class _WorkerConn:
    """Dispatcher-side record of one connected worker."""

    __slots__ = (
        "sock",
        "ordinal",
        "worker_id",
        "alive",
        "send_lock",
        "suspect",
    )

    def __init__(self, sock: socket.socket, ordinal: int) -> None:
        self.sock = sock
        self.ordinal = ordinal
        self.worker_id = f"w{ordinal}"
        self.alive = True
        #: lease expired; holds no new work until it answers or dies
        self.suspect = False
        self.send_lock = threading.Lock()

    def send(self, kind: str, body: Any = None) -> None:
        with self.send_lock:
            send_frame(self.sock, kind, body)


class SocketWorkerExecutor(Executor):
    """Distribute chunks to TCP workers with lease-based recovery.

    Parameters
    ----------
    n_workers:
        Workers the launcher starts for each run (ignored when
        ``launcher=None`` — then external workers are awaited instead).
    host, port:
        Listen address. The default binds loopback on an ephemeral
        port; bind a routable address and a fixed port to accept
        external (SSH-launched) workers, and treat the network as
        trusted — the protocol authenticates but does not encrypt.
    lease_timeout:
        Seconds a chunk assignment survives without a heartbeat before
        it is revoked and redispatched.
    heartbeat_interval:
        How often workers renew their leases; must be well under
        ``lease_timeout``.
    retry:
        :class:`~repro.exec.retry.RetryPolicy` budgeting replacement
        workers (``max_retries`` respawns per run).
    chaos:
        Optional :class:`~repro.exec.chaos.ChaosPlan` shipped to every
        worker, for testing the fabric's own fault tolerance.
    launcher:
        How to start workers: :func:`fork_launcher` (default), any
        callable with its signature, or ``None`` to only accept
        external workers.
    connect_timeout:
        Seconds to wait for the first worker before giving up.
    """

    name = "socket"

    def __init__(
        self,
        n_workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 10.0,
        heartbeat_interval: float = 2.0,
        retry: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosPlan] = None,
        launcher: Optional[Launcher] = fork_launcher,
        connect_timeout: float = 30.0,
    ) -> None:
        super().__init__()
        if launcher is not None and n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {n_workers}"
            )
        if lease_timeout <= 0:
            raise ConfigurationError(
                f"lease_timeout must be > 0, got {lease_timeout}"
            )
        if heartbeat_interval <= 0 or heartbeat_interval >= lease_timeout:
            raise ConfigurationError(
                f"heartbeat_interval must be in (0, lease_timeout), got "
                f"{heartbeat_interval} against lease_timeout={lease_timeout}"
            )
        self.n_workers = n_workers
        self.host = host
        self.port = port
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = heartbeat_interval
        self.retry = retry if retry is not None else RetryPolicy()
        self.chaos = chaos
        self.launcher = launcher
        self.connect_timeout = connect_timeout

    # ------------------------------------------------------------------
    def run(
        self,
        pending: Sequence[IndexedSeed],
        state: Dict[str, Any],
        *,
        chunk_size: Optional[int] = None,
        on_chunk_done: Optional[ChunkCallback] = None,
    ) -> ResultMap:
        import repro.sim.runner as runner

        run = _DispatchRun(self, state, on_chunk_done)
        lanes = state.get("batch_lanes", 1) or 1
        workers = self.n_workers if self.launcher is not None else 2
        chunks = build_chunks(pending, workers, chunk_size, lanes)

        # Park the state for forked workers (inherited at fork time),
        # exactly like the local pool does.
        previous = runner._WORKER_STATE
        runner._WORKER_STATE = state
        try:
            return run.execute(chunks)
        finally:
            runner._WORKER_STATE = previous
            run.shutdown()


class _DispatchRun:
    """One sweep's dispatch state: listener, roster, leases, results.

    Separated from the executor so :class:`SocketWorkerExecutor` stays
    reusable — every :meth:`~SocketWorkerExecutor.run` gets a fresh
    listener, token, event queue, and roster.
    """

    def __init__(
        self,
        executor: SocketWorkerExecutor,
        state: Dict[str, Any],
        on_chunk_done: Optional[ChunkCallback],
    ) -> None:
        self.executor = executor
        self.state = state
        self.obs = state.get("obs")
        self.on_chunk_done = on_chunk_done
        #: per-run auth secret; also exported for external workers
        self.token = os.urandom(16).hex()
        self.events: "queue.Queue[Tuple[str, Any, Any]]" = queue.Queue()
        self.spawned = 0
        self.processes: List[Any] = []
        self.conns: List[_WorkerConn] = []
        self.listener: Optional[socket.socket] = None
        self._accepting = False
        #: workers launched but not yet welcomed (liveness accounting)
        self.expecting = 0

    # ------------------------------------------------------------------
    # listener / roster
    # ------------------------------------------------------------------
    def start_listener(self) -> Tuple[str, int]:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.executor.host, self.executor.port))
        listener.listen(16)
        self.listener = listener
        self._accepting = True
        threading.Thread(
            target=self._accept_loop, name="repro-exec-accept", daemon=True
        ).start()
        return listener.getsockname()[:2]

    def _accept_loop(self) -> None:
        assert self.listener is not None
        while self._accepting:
            try:
                sock, _addr = self.listener.accept()
            except OSError:
                return  # listener closed: run is over
            threading.Thread(
                target=self._handshake, args=(sock,), daemon=True
            ).start()

    def _handshake(self, sock: socket.socket) -> None:
        try:
            sock.settimeout(self.executor.connect_timeout)
            kind, body = recv_frame(sock)
            if kind != "hello" or body.get("token") != self.token:
                send_frame(sock, "error", "bad token or handshake")
                sock.close()
                return
            welcome: Dict[str, Any] = {
                "heartbeat_interval": self.executor.heartbeat_interval,
                "chaos": self.executor.chaos,
            }
            if not body.get("inherit", False):
                try:
                    pickle.dumps(self.state)
                except Exception as exc:
                    send_frame(
                        sock,
                        "error",
                        "this sweep's factories are not picklable "
                        f"({exc}); external workers need module-level "
                        "factories — use the fork launcher instead",
                    )
                    sock.close()
                    return
                welcome["state"] = self.state
            conn = _WorkerConn(sock, self._next_ordinal())
            welcome["worker"] = conn.ordinal
            send_frame(sock, "welcome", welcome)
            sock.settimeout(None)
        except (ProtocolError, OSError):
            sock.close()
            return
        self.conns.append(conn)
        self.events.put(("ready", conn, None))
        threading.Thread(
            target=self._reader_loop,
            args=(conn,),
            name=f"repro-exec-reader-{conn.worker_id}",
            daemon=True,
        ).start()

    _ordinal_lock = threading.Lock()

    def _next_ordinal(self) -> int:
        with self._ordinal_lock:
            ordinal = self.spawned
            self.spawned += 1
        return ordinal

    def _reader_loop(self, conn: _WorkerConn) -> None:
        while True:
            try:
                kind, body = recv_frame(conn.sock)
            except (ProtocolError, OSError) as exc:
                conn.alive = False
                self.events.put(("lost", conn, str(exc)))
                return
            self.events.put((kind, conn, body))

    def launch_worker(self, host: str, port: int) -> None:
        launcher = self.executor.launcher
        if launcher is None:
            return
        self.expecting += 1
        handle = launcher(host, port, self.token, self.spawned)
        if handle is not None:
            self.processes.append(handle)

    # ------------------------------------------------------------------
    # the scheduler
    # ------------------------------------------------------------------
    def execute(self, chunks: List[List[IndexedSeed]]) -> ResultMap:
        executor = self.executor
        host, port = self.start_listener()
        for _ in range(executor.n_workers if executor.launcher else 0):
            self.launch_worker(host, port)

        results: ResultMap = {}
        todo: List[Tuple[int, List[IndexedSeed]]] = list(enumerate(chunks))
        outstanding: Set[int] = {chunk_id for chunk_id, _chunk in todo}
        chunk_map: Dict[int, List[IndexedSeed]] = dict(todo)
        #: chunk_id -> pending reassignment entry awaiting its new owner
        requeued_from: Dict[int, Dict[str, Any]] = {}
        leases: Dict[str, Tuple[int, float]] = {}  # worker_id -> (chunk, t)
        by_id: Dict[str, _WorkerConn] = {}
        idle: List[_WorkerConn] = []
        respawns = 0
        last_progress = time.monotonic()

        def harvest(chunk_id: int, body: Dict[str, Any]) -> None:
            outstanding.discard(chunk_id)
            snapshot = body.get("obs")
            if snapshot is not None and self.obs is not None:
                self.obs.merge(snapshot)
            pairs = body["pairs"]
            results.update(pairs)
            if self.on_chunk_done is not None:
                self.on_chunk_done(pairs)

        def requeue(chunk_id: int, conn: _WorkerConn, reason: str) -> None:
            if chunk_id not in outstanding:
                return
            entry = {
                "trials": [index for index, _seed in chunk_map[chunk_id]],
                "from": conn.worker_id,
                "to": None,
                "reason": reason,
            }
            self.executor.report.reassignments.append(entry)
            requeued_from[chunk_id] = entry
            todo.append((chunk_id, chunk_map[chunk_id]))
            if self.obs is not None:
                self.obs.counter("exec.reassigned").add()

        def fail(message: str) -> "ExecutorError":
            return ExecutorError(message, completed=results)

        while outstanding:
            # hand work to idle workers
            while todo and idle:
                chunk_id, chunk = todo.pop(0)
                if chunk_id not in outstanding:
                    continue  # completed by a late duplicate meanwhile
                conn = idle.pop(0)
                by_id[conn.worker_id] = conn
                try:
                    conn.send(
                        "task", {"chunk_id": chunk_id, "chunk": chunk}
                    )
                except OSError:
                    conn.alive = False
                    todo.insert(0, (chunk_id, chunk))
                    continue
                leases[conn.worker_id] = (
                    chunk_id,
                    time.monotonic() + executor.lease_timeout,
                )
                entry = requeued_from.pop(chunk_id, None)
                if entry is not None:
                    entry["to"] = conn.worker_id

            # wait for the next event or the next lease expiry
            now = time.monotonic()
            if leases:
                wait = max(
                    min(deadline for _cid, deadline in leases.values())
                    - now,
                    0.01,
                )
            else:
                wait = 0.1
                live_count = sum(1 for c in self.conns if c.alive)
                if live_count == 0 and now - last_progress > (
                    executor.connect_timeout
                ):
                    raise fail(
                        "no live socket workers and none connected "
                        f"within {executor.connect_timeout}s"
                    )
            try:
                kind, conn, body = self.events.get(timeout=wait)
            except queue.Empty:
                kind, conn, body = "", None, None

            if kind == "ready":
                self.expecting = max(self.expecting - 1, 0)
                last_progress = time.monotonic()
                self.executor.report.workers.append(conn.worker_id)
                if self.obs is not None:
                    self.obs.counter("exec.workers").add()
                idle.append(conn)
            elif kind == "heartbeat":
                last_progress = time.monotonic()
                lease = leases.get(conn.worker_id)
                if lease is not None:
                    leases[conn.worker_id] = (
                        lease[0],
                        time.monotonic() + executor.lease_timeout,
                    )
            elif kind == "result":
                chunk_id = body["chunk"]
                leases.pop(conn.worker_id, None)
                last_progress = time.monotonic()
                conn.suspect = False
                if chunk_id in outstanding:
                    harvest(chunk_id, body)
                # a duplicate (the chunk was redispatched and finished
                # elsewhere first) carries bit-identical records, so
                # dropping it is just deduplication, not data loss
                if conn.alive:
                    idle.append(conn)
            elif kind == "trial_error":
                raise body["error"]
            elif kind == "lost":
                self.executor.report.worker_losses += 1
                if self.obs is not None:
                    self.obs.counter("exec.worker_lost").add()
                if conn in idle:
                    idle.remove(conn)
                lease = leases.pop(conn.worker_id, None)
                if lease is not None:
                    requeue(lease[0], conn, "worker_lost")
                if executor.launcher is not None and self.retry_respawn(
                    respawns
                ):
                    respawns += 1
                    self.executor.report.retries += 1
                    if self.obs is not None:
                        self.obs.counter("exec.retries").add()
                    executor.retry.sleep(respawns)
                    self.launch_worker(host, port)
                live = [c for c in self.conns if c.alive]
                if (
                    not live
                    and outstanding
                    and self.expecting <= 0
                    and not self._external_possible()
                ):
                    raise fail(
                        f"all socket workers lost ({respawns} "
                        "respawn(s) already spent)"
                    )

            # revoke expired leases
            now = time.monotonic()
            for worker_id, (chunk_id, deadline) in list(leases.items()):
                if deadline <= now:
                    del leases[worker_id]
                    owner = by_id.get(worker_id)
                    if owner is not None:
                        owner.suspect = True
                        requeue(chunk_id, owner, "lease_expired")

        return results

    def retry_respawn(self, respawns: int) -> bool:
        """Whether one more replacement worker fits the retry budget."""
        return self.executor.retry.allows(respawns + 1)

    def _external_possible(self) -> bool:
        """External workers may still connect when no launcher exists."""
        return self.executor.launcher is None

    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Release every run resource; safe to call more than once."""
        self._accepting = False
        for conn in self.conns:
            if conn.alive:
                try:
                    conn.send("bye")
                except OSError:
                    pass
            try:
                conn.sock.close()
            except OSError:
                pass
        if self.listener is not None:
            try:
                self.listener.close()
            except OSError:
                pass
            self.listener = None
        for process in self.processes:
            join = getattr(process, "join", None)
            if join is not None:
                join(timeout=2.0)
            if getattr(process, "is_alive", lambda: False)():
                terminate = getattr(process, "terminate", None)
                if terminate is not None:
                    terminate()
                    if join is not None:
                        join(timeout=1.0)
        self.processes = []
