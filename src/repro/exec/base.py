"""The executor protocol: exact-seed chunk dispatch behind one interface.

An :class:`Executor` owns *where* trials run; :func:`run_trials` owns
*what* runs and keeps owning determinism. The contract that makes a
backend correct:

* the work list is ``(trial index, pre-derived SeedSequence)`` pairs —
  seeds are derived by the runner, in trial order, before dispatch;
* a backend may chunk, reorder, retry, or redispatch units freely,
  because executing a unit is a pure function of its seed: any
  execution of the same unit is bit-identical, so recovery is
  idempotent and results are keyed by trial index with last-write-wins;
* results return as ``{trial index: record}`` with every pending index
  present, or the backend raises :class:`~repro.errors.ExecutorError`
  carrying what it did finish.

Each executor fills in an :class:`ExecutorReport` as it runs — backend
name, worker roster, reassignment log, retry/loss tallies — which the
runner stamps into the sweep's :class:`~repro.obs.manifest.RunManifest`
(schema v3). Failure handling across backends is shared machinery:
:class:`~repro.exec.retry.RetryPolicy` for budgets/backoff and
:func:`execute_with_fallback` for the socket → local pool → serial
degradation chain.
"""

from __future__ import annotations

import math
import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ExecutorError
from repro.obs.registry import Registry

#: ``(trial index, pre-derived seed sequence)`` — the dispatch unit
#: (mirrors the runner's ``_IndexedSeed``; kept loose here so the exec
#: package never imports the runner at module scope)
IndexedSeed = Tuple[int, Any]

#: ``{trial index: trial record}`` — a backend's return value
ResultMap = Dict[int, Any]

#: checkpoint hook: called with each completed chunk's ``(index,
#: record)`` pairs, in completion order
ChunkCallback = Callable[[List[Tuple[int, Any]]], None]


@dataclass
class ExecutorReport:
    """What one run's execution layer did — the manifest's ``executor``.

    Mutable on purpose: backends append to it as events happen, then
    the runner freezes :meth:`to_dict` into the manifest. Everything in
    here is *reporting*, never an input to any trial, so two runs that
    degrade differently still produce identical results — only their
    manifests tell the story apart (and ``repro obs diff`` reports the
    ``executor`` field informationally, outside the identity verdict).
    """

    #: backend that ultimately ran trials ("serial", "local", "socket")
    backend: str = ""
    #: logical worker ids in spawn order ("w0", "w1", ... — replacements
    #: keep counting up)
    workers: List[str] = field(default_factory=list)
    #: one entry per lease/crash reassignment:
    #: ``{"trials": [...], "from": "w0", "to": "w2", "reason": ...}``
    reassignments: List[Dict[str, Any]] = field(default_factory=list)
    #: retry attempts spent (pool rebuilds, worker respawns)
    retries: int = 0
    #: workers lost to crashes or dropped connections
    worker_losses: int = 0
    #: backends abandoned on the way here, in order ("socket", ...)
    degraded_from: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        """Stable plain-dict form for the manifest (JSON-safe)."""
        return {
            "backend": self.backend,
            "workers": list(self.workers),
            "reassignments": [dict(r) for r in self.reassignments],
            "retries": self.retries,
            "worker_losses": self.worker_losses,
            "degraded_from": list(self.degraded_from),
        }


class Executor(ABC):
    """One execution backend for exact-seed trial dispatch.

    Implementations must be *reusable* (a fresh :meth:`run` per sweep,
    with per-run state reset) and must treat ``state`` as opaque
    runner configuration to pass through to the chunk runner.
    """

    #: short stable name ("serial", "local", "socket") — the CLI knob
    #: value, the manifest ``backend`` field, and the registry label
    name: ClassVar[str] = ""

    def __init__(self) -> None:
        self.report = ExecutorReport(backend=type(self).name)

    @abstractmethod
    def run(
        self,
        pending: Sequence[IndexedSeed],
        state: Dict[str, Any],
        *,
        chunk_size: Optional[int] = None,
        on_chunk_done: Optional[ChunkCallback] = None,
    ) -> ResultMap:
        """Execute every pending unit; return records keyed by index.

        Must either complete all of ``pending`` or raise
        :class:`~repro.errors.ExecutorError` with partial results
        attached. ``on_chunk_done`` (the checkpoint hook) is called in
        completion order with each chunk's pairs — including chunks
        completed by a redispatch.
        """

    # ------------------------------------------------------------------
    def _reset_report(self) -> None:
        """Start a fresh report for a new sweep (same backend name)."""
        self.report = ExecutorReport(backend=type(self).name)


def build_chunks(
    pending: Sequence[IndexedSeed],
    workers: int,
    chunk_size: Optional[int],
    lanes: int,
) -> List[List[IndexedSeed]]:
    """Split the work list into dispatch chunks (shared by all backends).

    The sizing rule is the pool's original heuristic — ~4 chunks per
    worker, rounded up to whole lane groups so workers run full batches
    — now in one place so every backend chunks identically and a chunk
    lost on one backend maps onto the same trials on the next.
    """
    lanes = max(lanes, 1)
    if chunk_size is None:
        chunk_size = max(1, math.ceil(len(pending) / (max(workers, 1) * 4)))
        if lanes > 1:
            chunk_size = math.ceil(chunk_size / lanes) * lanes
    return [
        list(pending[start : start + chunk_size])
        for start in range(0, len(pending), chunk_size)
    ]


def execute_with_fallback(
    chain: Sequence[Executor],
    pending: Sequence[IndexedSeed],
    state: Dict[str, Any],
    *,
    chunk_size: Optional[int] = None,
    on_chunk_done: Optional[ChunkCallback] = None,
    obs: Optional[Registry] = None,
) -> Tuple[ResultMap, Executor]:
    """Run ``pending`` through a degradation chain of executors.

    Backends are tried in order; when one raises
    :class:`~repro.errors.ExecutorError` its partial results are kept,
    the failure is warned and counted (``exec.degraded``), and only the
    *remaining* trials move to the next backend — no completed trial is
    ever re-run across a degradation step (within a backend, redispatch
    of in-flight work is the backend's own, idempotent, business).

    Returns the merged results and the executor that finished the job
    (its report gains the abandoned backends' names in
    ``degraded_from``). The last backend's failure propagates: a chain
    ending in :class:`~repro.exec.serial.SerialExecutor` only fails on
    a genuine trial error, which no backend is allowed to swallow.
    """
    if not chain:
        raise ExecutorError("empty executor chain")
    results: ResultMap = {}
    degraded_from: List[str] = []
    remaining = list(pending)
    for position, executor in enumerate(chain):
        last = position == len(chain) - 1
        executor._reset_report()
        executor.report.degraded_from = list(degraded_from)
        try:
            results.update(
                executor.run(
                    remaining,
                    state,
                    chunk_size=chunk_size,
                    on_chunk_done=on_chunk_done,
                )
            )
            return results, executor
        except ExecutorError as exc:
            results.update(exc.completed)
            if last:
                raise ExecutorError(str(exc), completed=results) from exc
            remaining = [
                unit for unit in remaining if unit[0] not in results
            ]
            successor = chain[position + 1]
            warnings.warn(
                f"executor '{type(executor).name}' failed ({exc}); "
                f"degrading to {type(successor).name} execution for the "
                f"remaining {len(remaining)} trial(s)",
                RuntimeWarning,
                stacklevel=3,
            )
            if obs is not None:
                obs.counter("exec.degraded").add()
            degraded_from.append(type(executor).name)
    raise ExecutorError("executor chain exhausted")  # pragma: no cover
