"""The shared retry policy: capped exponential backoff, deterministic.

Before the executor fabric existed, the broken-pool recovery path in
:mod:`repro.sim.runner` carried its own backoff arithmetic
(``backoff_base * 2 ** (attempt - 1)``).  Every backend that retries —
pool rebuilds after ``BrokenProcessPool``, socket-worker respawns after a
crash — now shares this one frozen policy, so the schedule is a single
auditable contract instead of duplicated constants.

The schedule is *deterministic by construction*: no jitter, no clock
reads (only :func:`time.sleep`, which consumes time but never tells it).
Two runs with the same policy retry on the same schedule, which is what
keeps recovery behaviour reproducible in the chaos tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with a bounded retry budget.

    Attributes
    ----------
    max_retries:
        How many retries to attempt before giving up (``0`` = never
        retry). For the local pool this counts pool rebuilds; for the
        socket fabric it counts replacement workers spawned.
    backoff_base:
        Delay before the first retry, in seconds; doubled on each
        further retry. ``0.0`` retries immediately (the tests' choice).
    backoff_cap:
        Upper bound on any single delay, so long sweeps never back off
        into hours.
    """

    max_retries: int = 2
    backoff_base: float = 0.5
    backoff_cap: float = 30.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base < 0:
            raise ConfigurationError(
                f"backoff_base must be >= 0, got {self.backoff_base}"
            )
        if self.backoff_cap < 0:
            raise ConfigurationError(
                f"backoff_cap must be >= 0, got {self.backoff_cap}"
            )

    # ------------------------------------------------------------------
    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise ConfigurationError(
                f"retry attempts are 1-based, got {attempt}"
            )
        return min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)

    def schedule(self) -> Iterator[float]:
        """The full delay schedule, one entry per allowed retry."""
        for attempt in range(1, self.max_retries + 1):
            yield self.delay(attempt)

    def allows(self, attempt: int) -> bool:
        """Whether retry number ``attempt`` (1-based) is within budget."""
        return attempt <= self.max_retries

    def sleep(self, attempt: int) -> None:
        """Sleep out the backoff before retry number ``attempt``."""
        delay = self.delay(attempt)
        if delay > 0:
            time.sleep(delay)
