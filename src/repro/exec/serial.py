"""The in-process serial executor — the reference backend.

Every other backend's correctness is defined as "bit-identical to
:class:`SerialExecutor` for the same seed". It is also the terminal
link of every degradation chain: it shares no pools, sockets, or
processes with anything, so the only way it fails is a genuine trial
error — which no backend is allowed to swallow.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from repro.exec.base import (
    ChunkCallback,
    Executor,
    IndexedSeed,
    ResultMap,
)


class SerialExecutor(Executor):
    """Run every trial in the calling process, in trial order.

    ``chunk_size`` is ignored: serial execution steps by whole lane
    groups (``state["batch_lanes"]``), exactly like the pre-fabric
    serial path, so obs chunk counts and checkpoint granularity are
    unchanged for existing callers.
    """

    name = "serial"

    def run(
        self,
        pending: Sequence[IndexedSeed],
        state: Dict[str, Any],
        *,
        chunk_size: Optional[int] = None,
        on_chunk_done: Optional[ChunkCallback] = None,
    ) -> ResultMap:
        import repro.sim.runner as runner

        step = state.get("batch_lanes", 1) or 1
        results: ResultMap = {}
        for start in range(0, len(pending), step):
            pairs = runner._run_serial_chunk(
                list(pending[start : start + step]), state
            )
            results.update(pairs)
            if on_chunk_done is not None:
                on_chunk_done(pairs)
        return results
