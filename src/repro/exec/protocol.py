"""Length-prefixed frame protocol for the socket-worker fabric.

One frame is a 4-byte big-endian payload length followed by a pickled
``(kind, body)`` tuple.  Pickle keeps the protocol exact — seed
sequences, summary rows, and :class:`~repro.sim.metrics.RunMetrics`
records cross the wire bit-identically — at the price of trusting the
peer: frames execute arbitrary code when unpickled.  The fabric is
therefore **authenticated but not sandboxed**: the dispatcher generates
a per-run secret token, every worker must present it in its ``hello``
frame before anything else is unpickled, and the listener binds to
loopback unless explicitly told otherwise.  Run workers only on hosts
you would run the code on directly (the SSH use case).

Frame kinds (dispatcher ⇄ worker):

``hello``        worker → server: ``{"token": str, "pid": int}``
``welcome``      server → worker: worker id, heartbeat interval, chaos
                 assignment, optional pickled state for external workers
``task``         server → worker: ``{"chunk_id": int, "chunk": [...]}``
``result``       worker → server: chunk id, record pairs, obs snapshot
``heartbeat``    worker → server: lease renewal, empty body
``trial_error``  worker → server: a deterministic trial failure (e.g.
                 :class:`~repro.errors.TrialTimeoutError`) to re-raise
``bye``          server → worker: drain and exit
``error``        either direction: human-readable refusal
"""

from __future__ import annotations

import pickle
import socket
import struct
from typing import Any, Tuple

from repro.errors import ReproError

#: frames larger than this are refused — a corrupt length prefix must
#: not make the reader allocate gigabytes
MAX_FRAME_BYTES = 256 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(ReproError):
    """A malformed, truncated, or oversized fabric frame."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection (EOF mid-stream or between frames)."""


def encode_frame(kind: str, body: Any = None) -> bytes:
    """Serialize one ``(kind, body)`` frame: length header + payload.

    Shared by the blocking socket fabric (:func:`send_frame`) and the
    asyncio serving layer (:mod:`repro.serve.service` writes the encoded
    bytes straight to a ``StreamWriter``), so both speak the identical
    wire format.
    """
    payload = pickle.dumps((kind, body), protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(cap {MAX_FRAME_BYTES}); chunk the work smaller"
        )
    return _LENGTH.pack(len(payload)) + payload


def frame_length(header: bytes) -> int:
    """Decode the 4-byte length prefix, enforcing the frame cap."""
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES}); "
            "corrupt stream or protocol mismatch"
        )
    return length


def decode_frame(payload: bytes) -> Tuple[str, Any]:
    """Unpickle one frame payload (the bytes after the length prefix)."""
    try:
        kind, body = pickle.loads(payload)
    except Exception as exc:  # unpickling failures are protocol failures
        raise ProtocolError(f"undecodable frame: {exc}") from None
    if not isinstance(kind, str):
        raise ProtocolError(f"frame kind must be a string, got {kind!r}")
    return kind, body


#: size of the length prefix, for readers that pull the header themselves
HEADER_BYTES = _LENGTH.size


def send_frame(sock: socket.socket, kind: str, body: Any = None) -> None:
    """Serialize and send one ``(kind, body)`` frame."""
    sock.sendall(encode_frame(kind, body))


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    """Read exactly ``count`` bytes or raise :class:`ConnectionClosed`."""
    chunks = []
    remaining = count
    while remaining > 0:
        block = sock.recv(min(remaining, 1 << 20))
        if not block:
            raise ConnectionClosed(
                f"connection closed with {remaining} of {count} bytes unread"
            )
        chunks.append(block)
        remaining -= len(block)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[str, Any]:
    """Receive one frame; raises :class:`ConnectionClosed` on EOF."""
    header = _recv_exact(sock, HEADER_BYTES)
    payload = _recv_exact(sock, frame_length(header))
    return decode_frame(payload)
