"""Monotonic-deadline trial cancellation, off the main thread too.

The first-generation per-trial timeout was a ``SIGALRM`` interval timer,
which only works on a Unix main thread. The executor fabric runs trials
from scheduler threads and socket workers, so the budget is now enforced
by a single daemon *watchdog thread* watching ``time.monotonic()``
deadlines and cancelling overdue trials in whatever thread runs them:

* **main thread** — the watchdog sends ``SIGALRM`` via
  :func:`signal.pthread_kill`; the handler (installed by
  :func:`trial_deadline`, from the main thread, as CPython requires)
  raises :class:`~repro.errors.TrialTimeoutError`. Signals interrupt
  blocking syscalls, so even a sleeping trial dies on time. This covers
  the serial path and every forked pool/socket worker.
* **any other thread** — the watchdog plants the exception with
  ``PyThreadState_SetAsyncExc``, which fires at the next bytecode
  boundary. A tight numpy loop is interrupted promptly; a thread parked
  in a long blocking syscall is cancelled only when it returns (the
  documented limitation of off-main-thread cancellation in CPython).

Semantics are unchanged from the SIGALRM era: the same
:class:`~repro.errors.TrialTimeoutError` with the same message, raised
inside the protected block. On runtimes with neither mechanism the
budget is silently unenforced, exactly like the old implementation.

This module owns the fabric's only ambient clock reads
(``time.monotonic``) — which is why it lives in :mod:`repro.exec`,
outside the determinism-critical packages reprolint's wall-clock rule
protects. Deadlines bound *wall time*; they never feed a result.
"""

from __future__ import annotations

import ctypes
import signal
import threading
import time
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.errors import TrialTimeoutError


def timeout_message(seconds: float) -> str:
    """The canonical budget-exceeded message (pinned by the test suite)."""
    return f"trial exceeded its wall-clock budget of {seconds}s"


class _Handle:
    """One protected block's deadline, shared with the watchdog."""

    __slots__ = (
        "deadline",
        "seconds",
        "thread_ident",
        "use_signal",
        "fired",
        "cancelled",
        "delivered",
    )

    def __init__(
        self, seconds: float, thread_ident: int, use_signal: bool
    ) -> None:
        self.deadline = time.monotonic() + seconds
        self.seconds = seconds
        self.thread_ident = thread_ident
        self.use_signal = use_signal
        #: watchdog committed to cancelling this block
        self.fired = False
        #: the block finished before (or while) the watchdog acted
        self.cancelled = False
        #: the SIGALRM for this handle reached the Python handler
        self.delivered = False


class _Watchdog:
    """The process-wide deadline monitor (one lazy daemon thread).

    All state transitions happen under one condition lock, so for every
    handle exactly one of ``fired`` / ``cancelled`` wins; the loser is a
    no-op. The thread is restarted lazily after ``fork`` (forked
    children inherit only the forking thread, and ``Thread.is_alive``
    reports the copy dead).
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._handles: List[_Handle] = []
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def register(self, handle: _Handle) -> None:
        with self._cond:
            self._handles.append(handle)
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._run,
                    name="repro-deadline-watchdog",
                    daemon=True,
                )
                self._thread.start()
            self._cond.notify()

    def cancel(self, handle: _Handle) -> None:
        """Withdraw a handle; settle any in-flight cancellation.

        If the watchdog already fired, the cancellation is *en route* to
        this thread. For the signal path we wait for the (now inert —
        ``cancelled`` is set) signal to be consumed before the caller
        restores the previous handler, so a late ``SIGALRM`` can never
        hit a handler that doesn't expect it. For the async-exc path we
        clear the pending exception if it has not raised yet.
        """
        with self._cond:
            handle.cancelled = True
            if handle in self._handles:
                self._handles.remove(handle)
            fired = handle.fired
        if not fired:
            return
        if handle.use_signal:
            while not handle.delivered:
                time.sleep(0.0005)
        else:
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(handle.thread_ident), None
            )

    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._handles:
                    self._cond.wait()
                now = time.monotonic()
                due = [h for h in self._handles if h.deadline <= now]
                if not due:
                    next_deadline = min(h.deadline for h in self._handles)
                    self._cond.wait(timeout=next_deadline - now)
                    continue
                for handle in due:
                    self._handles.remove(handle)
                    if not handle.cancelled:
                        handle.fired = True
                        self._fire(handle)

    def _fire(self, handle: _Handle) -> None:
        if handle.use_signal:
            try:
                signal.pthread_kill(handle.thread_ident, signal.SIGALRM)
            except (ProcessLookupError, OSError):  # thread already gone
                pass
            return
        planted = ctypes.pythonapi.PyThreadState_SetAsyncExc(
            ctypes.c_ulong(handle.thread_ident),
            ctypes.py_object(TrialTimeoutError),
        )
        if planted > 1:  # pragma: no cover - CPython contract says 0 or 1
            ctypes.pythonapi.PyThreadState_SetAsyncExc(
                ctypes.c_ulong(handle.thread_ident), None
            )


_WATCHDOG = _Watchdog()


@contextmanager
def trial_deadline(seconds: Optional[float]) -> Iterator[None]:
    """Raise :class:`TrialTimeoutError` if the block runs past ``seconds``.

    ``None`` or a non-positive budget disables enforcement. Safe on any
    thread; see the module docstring for the per-thread mechanism and
    its limits.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    thread = threading.current_thread()
    ident = thread.ident
    use_signal = (
        thread is threading.main_thread()
        and hasattr(signal, "SIGALRM")
        and hasattr(signal, "pthread_kill")
    )
    if ident is None or (
        not use_signal and not hasattr(ctypes, "pythonapi")
    ):  # pragma: no cover - non-CPython: budget unenforced, as before
        yield
        return

    handle = _Handle(float(seconds), ident, use_signal)
    previous = None
    if use_signal:
        previous = signal.getsignal(signal.SIGALRM)

        def _expired(signum: int, frame: object) -> None:
            handle.delivered = True
            if handle.fired and not handle.cancelled:
                raise TrialTimeoutError(timeout_message(seconds))
            if callable(previous):  # not ours: pass it along
                previous(signum, frame)

        signal.signal(signal.SIGALRM, _expired)

    _WATCHDOG.register(handle)
    try:
        yield
    except TrialTimeoutError as exc:
        if str(exc):
            raise
        # an async-exc cancellation arrives as a bare exception (only
        # types cross PyThreadState_SetAsyncExc); attach the message
        raise TrialTimeoutError(timeout_message(seconds)) from None
    finally:
        try:
            _WATCHDOG.cancel(handle)
        except TrialTimeoutError:
            # the deadline and the block's completion raced; the block
            # finished, so the cancellation is moot
            pass
        if use_signal:
            signal.signal(signal.SIGALRM, previous)
