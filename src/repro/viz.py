"""Terminal visualizations of runs and traces.

Plotting-stack-free views of what a simulation did:

* :func:`satisfaction_curve` — fraction of honest players satisfied per
  round (the epidemic curve Lemma 6 describes);
* :func:`candidate_trajectory` — DISTILL's candidate-set sizes per
  ATTEMPT (the ``c_t`` sequence of Lemma 7);
* :func:`billboard_timeline` — votes per round, honest vs Byzantine
  (where the adversary spent its budget);
* :func:`render_run` — all of the above for one finished engine.

Everything renders to plain strings, so the output drops into logs,
docstrings, and bench artifacts unchanged.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import SynchronousEngine
from repro.sim.metrics import RunMetrics


def _bar(fraction: float, width: int) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def satisfaction_curve(
    metrics: RunMetrics, width: int = 40, max_rows: int = 20
) -> str:
    """Per-round honest satisfaction, one bar per (sub-sampled) round."""
    honest = metrics.honest_mask
    sat_rounds = metrics.satisfied_round[honest]
    n_honest = int(honest.sum())
    rounds = max(metrics.rounds, 1)
    step = max(1, rounds // max_rows)
    lines = ["round  satisfied"]
    for r in range(0, rounds + 1, step):
        frac = float((
            (sat_rounds >= 0) & (sat_rounds <= r)
        ).sum()) / n_honest
        lines.append(f"{r:5d}  |{_bar(frac, width)}| {frac:6.1%}")
    return "\n".join(lines)


def candidate_trajectory(metrics: RunMetrics) -> str:
    """The ``c_t`` sequences of each ATTEMPT, log-scaled bars."""
    attempts = metrics.strategy_info.get("attempts")
    if not attempts:
        return "(strategy reported no candidate trajectory)"
    lines: List[str] = []
    for i, attempt in enumerate(attempts):
        sizes = attempt.get("c_sizes") or []
        s_size = attempt.get("s_size")
        lines.append(
            f"ATTEMPT {i + 1}: |S|={s_size if s_size is not None else '?'}"
        )
        if not sizes:
            lines.append("  (run ended before C0 formed)")
            continue
        top = max(max(sizes), 1)
        for t, c in enumerate(sizes):
            label = "C0" if t == 0 else f"C{t}"
            frac = (np.log1p(c) / np.log1p(top)) if top > 0 else 0.0
            lines.append(f"  {label:>3} = {c:5d} |{_bar(float(frac), 30)}|")
    return "\n".join(lines)


def billboard_timeline(
    engine: SynchronousEngine, width: int = 40, max_rows: int = 20
) -> str:
    """Votes per round, split honest (#) vs Byzantine (x)."""
    board = engine.board
    honest_mask = engine.instance.honest_mask
    last = board.last_round
    if last < 0:
        return "(no votes were posted)"
    honest = np.zeros(last + 1, dtype=np.int64)
    byz = np.zeros(last + 1, dtype=np.int64)
    for post in board.vote_posts():
        if honest_mask[post.player]:
            honest[post.round_no] += 1
        else:
            byz[post.round_no] += 1
    peak = max(int((honest + byz).max()), 1)
    step = max(1, (last + 1) // max_rows)
    lines = ["round  votes (# honest, x byzantine)"]
    for r in range(0, last + 1, step):
        h = int(honest[r: r + step].sum())
        b = int(byz[r: r + step].sum())
        h_w = int(round(width * h / (peak * step)))
        b_w = int(round(width * b / (peak * step)))
        lines.append(f"{r:5d}  {'#' * h_w}{'x' * b_w} ({h}/{b})")
    return "\n".join(lines)


def render_run(engine: SynchronousEngine, metrics: RunMetrics) -> str:
    """The full dashboard for one finished run."""
    inst = engine.instance
    header = (
        f"{inst.describe()}\n"
        f"rounds={metrics.rounds} "
        f"mean_probes={metrics.mean_individual_probes:.2f} "
        f"success={metrics.all_honest_satisfied}"
    )
    return "\n\n".join(
        [
            header,
            "satisfaction curve:\n" + satisfaction_curve(metrics),
            "candidate trajectory:\n" + candidate_trajectory(metrics),
            "billboard timeline:\n" + billboard_timeline(engine),
        ]
    )


def compare_series(
    x_label: str,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 48,
) -> str:
    """Re-export of the experiments table 'figure' renderer (one import
    point for users who only touch :mod:`repro.viz`)."""
    from repro.experiments.tables import format_series

    if not series:
        raise ConfigurationError("compare_series needs at least one series")
    return format_series(x_label, xs, series, width=width)
