"""``python -m repro.lint`` — the determinism-contract gate.

Exit codes: ``0`` clean (every violation baselined), ``1`` dirty (new
violations, or baseline entries whose debt was paid without updating the
file), ``2`` usage or I/O error.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import List, Optional, Set

from repro.lint.baseline import (
    BaselineDrift,
    compare_to_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    DEFAULT_CACHE,
    DEFAULT_PATHS,
    LintError,
    lint_project,
)
from repro.lint.report import render_json, render_rules, render_text
from repro.lint.rules import PROJECT_RULES

#: discovered automatically in the working directory when --baseline is
#: not given, so `python -m repro.lint src tests` run from the repo root
#: honours the committed inventory
DEFAULT_BASELINE = "reprolint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "reprolint: project-wide enforcement of the repo's "
            "determinism contract — per-file AST rules (seeded, "
            "spawn-derived rng streams; no wall-clock or hash-order "
            "dependence in engine packages) plus cross-file analysis of "
            "rng stream flow, config-knob trios, the obs counter "
            "registry, and batched/scalar hook parity"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of inventoried pre-existing violations "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every violation",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "rewrite the baseline file from the current violations and "
            "exit 0 (use after intentionally fixing baselined debt)"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "parse files with N worker processes (default: 1; only "
            "cache-miss files are parsed either way)"
        ),
    )
    parser.add_argument(
        "--diff",
        default=None,
        metavar="REF",
        help=(
            "report only files changed vs the given git ref (plus all "
            "cross-file findings). The project model still covers every "
            "path, so cross-file rules see the whole tree."
        ),
    )
    parser.add_argument(
        "--cache",
        default=DEFAULT_CACHE,
        metavar="FILE",
        help=(
            "incremental cache file keyed by content hash "
            f"(default: {DEFAULT_CACHE}; gitignored, safe to delete)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the incremental cache",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its rationale and exit",
    )
    return parser


def _changed_files(ref: str) -> Set[str]:
    """Files changed vs ``ref`` plus untracked files, repo-relative."""
    changed: Set[str] = set()
    for args in (
        ["git", "diff", "--name-only", ref, "--"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                args, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            raise LintError(
                f"--diff {ref}: {' '.join(args)} failed: {detail.strip()}"
            ) from None
        changed.update(
            line.strip() for line in proc.stdout.splitlines() if line.strip()
        )
    return changed


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        sys.stdout.write(render_rules())
        return 0
    if args.write_baseline and args.diff:
        parser.error("--write-baseline needs a full run, not --diff")

    select = (
        [code.strip() for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        baseline_path = (
            DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else None
        )
    if args.no_baseline:
        baseline_path = None
    cache_path = None if args.no_cache else args.cache

    try:
        violations = lint_project(
            args.paths,
            select=select,
            jobs=max(1, args.jobs),
            cache_path=cache_path,
        )
        restrict: Optional[Set[str]] = None
        if args.diff is not None:
            changed = _changed_files(args.diff)
            # cross-file findings always surface: an edit in one file
            # can break a contract anchored in another
            violations = [
                v
                for v in violations
                if v.path in changed or v.code in PROJECT_RULES
            ]
            restrict = changed | {
                v.path for v in violations if v.code in PROJECT_RULES
            }
        if args.write_baseline:
            target = args.baseline or DEFAULT_BASELINE
            count = write_baseline(target, violations)
            sys.stdout.write(
                f"reprolint: baseline of {count} violation(s) written to "
                f"{target}\n"
            )
            return 0
        drift: Optional[BaselineDrift] = None
        reported = violations
        if baseline_path is not None:
            drift = compare_to_baseline(
                violations,
                load_baseline(baseline_path),
                restrict_paths=restrict,
            )
            reported = drift.new
    except (LintError, ValueError) as exc:
        sys.stderr.write(f"reprolint: error: {exc}\n")
        return 2

    renderer = render_json if args.format == "json" else render_text
    sys.stdout.write(renderer(reported, drift, args.paths))
    dirty = bool(reported) or (drift is not None and not drift.clean)
    return 1 if dirty else 0
