"""``python -m repro.lint`` — the determinism-contract gate.

Exit codes: ``0`` clean (every violation baselined), ``1`` dirty (new
violations, or baseline entries whose debt was paid without updating the
file), ``2`` usage or I/O error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint.baseline import (
    BaselineDrift,
    compare_to_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import DEFAULT_PATHS, LintError, lint_paths
from repro.lint.report import render_json, render_rules, render_text

#: discovered automatically in the working directory when --baseline is
#: not given, so `python -m repro.lint src tests` run from the repo root
#: honours the committed inventory
DEFAULT_BASELINE = "reprolint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "reprolint: AST-level enforcement of the repo's determinism "
            "contract (seeded, spawn-derived rng streams; no wall-clock "
            "or hash-order dependence in engine packages; batched-parity "
            "stream discipline)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline file of inventoried pre-existing violations "
            f"(default: {DEFAULT_BASELINE} when it exists)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every violation",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "rewrite the baseline file from the current violations and "
            "exit 0 (use after intentionally fixing baselined debt)"
        ),
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its rationale and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        sys.stdout.write(render_rules())
        return 0

    select = (
        [code.strip() for code in args.select.split(",") if code.strip()]
        if args.select
        else None
    )
    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        baseline_path = (
            DEFAULT_BASELINE if os.path.exists(DEFAULT_BASELINE) else None
        )
    if args.no_baseline:
        baseline_path = None

    try:
        violations = lint_paths(args.paths, select=select)
        if args.write_baseline:
            target = args.baseline or DEFAULT_BASELINE
            count = write_baseline(target, violations)
            sys.stdout.write(
                f"reprolint: baseline of {count} violation(s) written to "
                f"{target}\n"
            )
            return 0
        drift: Optional[BaselineDrift] = None
        reported = violations
        if baseline_path is not None:
            drift = compare_to_baseline(
                violations, load_baseline(baseline_path)
            )
            reported = drift.new
    except (LintError, ValueError) as exc:
        sys.stderr.write(f"reprolint: error: {exc}\n")
        return 2

    renderer = render_json if args.format == "json" else render_text
    sys.stdout.write(renderer(reported, drift, args.paths))
    dirty = bool(reported) or (drift is not None and not drift.clean)
    return 1 if dirty else 0
