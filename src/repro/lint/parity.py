"""RPL014: batched/scalar hook-surface parity.

The equivalence suite proves batched engines reproduce scalar results
*for the hooks the batched twin implements*. What it cannot catch is a
hook the twin silently drops: a scalar strategy that overrides
``on_player_restart`` whose ``make_batched`` twin never implements it
runs fine — lanes just lose restart handling, and only the fault
experiments drift. This checker makes the hook surface a contract:

* every class reachable through a ``make_batched`` return must exist in
  the project (a renamed twin is found at lint time, not import time);
* every hook the scalar class *defines* — itself or via a non-protocol
  ancestor — must be implemented by the twin under the scalar→batched
  name mapping, again itself or via a non-protocol ancestor (the
  ``PerLane*`` adapters forward everything, so extending one satisfies
  the whole surface).

Protocol roots (``Strategy``/``Adversary`` and their ``Batched*``
counterparts) provide inherited defaults on both sides; those defaults
are the *fallback*, not an implementation, so they count for neither
"scalar defines it" nor "twin provides it".
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Set, Tuple

#: scalar hook -> required batched hook, per protocol family
STRATEGY_HOOK_MAP: Dict[str, str] = {
    "reset": "reset_lanes",
    "choose_probes": "choose_probes_batch",
    "handle_results": "handle_results_batch",
    "finished": "finished",
    "on_player_restart": "on_player_restart",
    "info": "info",
}

ADVERSARY_HOOK_MAP: Dict[str, str] = {
    "reset": "reset_lanes",
    "act": "act",
}

#: protocol roots whose default bodies don't count as implementations
SCALAR_ROOTS: Set[str] = {"Strategy", "Adversary"}
BATCHED_ROOTS: Set[str] = {"BatchedStrategy", "BatchedAdversary"}


def _hook_map(base_names: Set[str]) -> Dict[str, str]:
    if "Adversary" in base_names:
        return ADVERSARY_HOOK_MAP
    if "Strategy" in base_names:
        return STRATEGY_HOOK_MAP
    return {}


def check_parity(model: Any) -> Iterator[Dict[str, Any]]:
    """RPL014 over every ``make_batched`` edge in src."""
    for summary in model.src_files():
        for class_name, info in summary["classes"].items():
            scalar = model.resolve_class(class_name, summary)
            if scalar is None or not info["make_batched_returns"]:
                continue
            hook_map = _hook_map(model.base_names(scalar))
            if not hook_map:
                continue
            scalar_hooks = model.methods_of(scalar, stop_at=SCALAR_ROOTS)
            for target in info["make_batched_returns"]:
                twin = model.resolve_class(target, summary)
                if twin is None:
                    yield {
                        "path": summary["path"],
                        "line": info["methods"].get(
                            "make_batched", info["line"]
                        ),
                        "col": 0,
                        "code": "RPL014",
                        "message": (
                            f"`{class_name}.make_batched` returns "
                            f"`{target}`, which is not a class this "
                            "project defines"
                        ),
                    }
                    continue
                yield from _check_twin(
                    model, summary, scalar, twin, hook_map, scalar_hooks
                )


def _check_twin(
    model: Any,
    summary: Dict[str, Any],
    scalar: Any,
    twin: Any,
    hook_map: Dict[str, str],
    scalar_hooks: Dict[str, Tuple[str, int]],
) -> Iterator[Dict[str, Any]]:
    twin_hooks = model.methods_of(twin, stop_at=BATCHED_ROOTS)
    missing: List[str] = []
    for scalar_hook, batched_hook in sorted(hook_map.items()):
        if scalar_hook not in scalar_hooks:
            continue  # scalar relies on the protocol default — no contract
        if batched_hook not in twin_hooks:
            missing.append(
                f"`{batched_hook}` (scalar `{scalar.name}.{scalar_hook}`)"
            )
    if missing:
        yield {
            "path": twin.path,
            "line": twin.info["line"],
            "col": 0,
            "code": "RPL014",
            "message": (
                f"batched twin `{twin.name}` of `{scalar.name}` does "
                "not implement " + ", ".join(missing)
            ),
        }
