"""Phase 1 of project-wide analysis: the per-file summaries and model.

The per-file rules (RPL001–RPL010) see one AST at a time; the cross-file
families (RPL011–RPL014) need facts no single file witnesses — which
class is whose batched twin, which ``REPRO_*`` variable has a CLI flag
in a *different* module, which counter names the obs registry declares.
This module extracts a compact, JSON-serializable :class:`FileSummary`
from each parsed module (so summaries cache and pickle across worker
processes) and aggregates them into a :class:`ProjectModel` that the
phase-2 checkers (``streamflow``, ``registry``, ``parity``) query.

Summaries are deliberately *plain data* (dicts/lists/strings): the
incremental cache stores them verbatim keyed by file content hash, so a
warm run rebuilds the whole model without re-parsing a single file.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

#: bump when the summary extraction changes shape — invalidates caches
SUMMARY_SCHEMA = 3

#: markdown files folded into the model for RPL012/RPL013 docs legs
DOC_GLOB_DIRS: Tuple[str, ...] = ("docs",)
DOC_EXTRA_FILES: Tuple[str, ...] = ("README.md",)

_ENV_RE = re.compile(r"\bREPRO_[A-Z][A-Z0-9_]*\b")

#: inline-backticked dotted token (counter/timer names in doc tables);
#: the whole backtick payload must be the token, so `engine.run()` or
#: `repro.obs.registry` never match
_DOC_METRIC_RE = re.compile(r"`([a-z][a-z0-9_]*\.[a-z][a-z0-9_]*)`")

_FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")


def module_name_for(path: str) -> str:
    """Dotted module id for a repo path (``src/repro/x.py`` → ``repro.x``)."""
    norm = path.replace("\\", "/")
    trimmed = norm[:-3] if norm.endswith(".py") else norm
    parts = [p for p in trimmed.split("/") if p not in ("", ".", "src")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _SummaryVisitor(ast.NodeVisitor):
    """One pass over a module collecting every cross-file-relevant fact."""

    def __init__(self, path: str, module: str) -> None:
        self.path = path
        self.module = module
        self.aliases: Dict[str, str] = {}
        self.classes: Dict[str, Dict[str, Any]] = {}
        self.functions: Dict[str, Dict[str, Any]] = {}
        self.env_vars: List[Dict[str, Any]] = []
        self.env_consts: Dict[str, str] = {}
        self.argparse_flags: List[Dict[str, Any]] = []
        self.counter_sites: List[Dict[str, Any]] = []
        self.string_consts: Dict[str, List[Tuple[str, int]]] = {}
        self._class_stack: List[str] = []
        self._func_stack: List[str] = []

    # -- imports --------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self.aliases[local] = alias.name if alias.asname else local
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        if node.level:  # resolve relative imports against this module
            base = self.module.split(".")
            base = base[: len(base) - node.level]
            module = ".".join(base + ([module] if module else []))
        for alias in node.names:
            local = alias.asname or alias.name
            if module:
                self.aliases[local] = f"{module}.{alias.name}"
        self.generic_visit(node)

    def resolve(self, name: Optional[str]) -> Optional[str]:
        """Canonicalize a (possibly dotted) local name through imports."""
        if name is None:
            return None
        head, _, rest = name.partition(".")
        origin = self.aliases.get(head)
        if origin is None:
            return name
        return f"{origin}.{rest}" if rest else origin

    # -- classes and functions -----------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = [
            self.resolve(_dotted(base))
            for base in node.bases
            if _dotted(base) is not None
        ]
        info: Dict[str, Any] = {
            "line": node.lineno,
            "bases": [b for b in bases if b is not None],
            "methods": {},
            "init_params": [],
            "make_batched_returns": [],
        }
        self.classes[node.name] = info
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _handle_function(self, node: Any) -> None:
        params = [a.arg for a in node.args.args if a.arg != "self"]
        if self._class_stack and len(self._func_stack) == 0:
            info = self.classes[self._class_stack[-1]]
            info["methods"][node.name] = node.lineno
            if node.name == "__init__":
                info["init_params"] = params
            if node.name == "make_batched":
                info["make_batched_returns"] = self._returned_ctors(node)
        elif not self._class_stack and not self._func_stack:
            self.functions[node.name] = {
                "line": node.lineno,
                "params": params,
            }
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _handle_function
    visit_AsyncFunctionDef = _handle_function

    def _returned_ctors(self, node: ast.AST) -> List[str]:
        """Class names constructed in ``return`` statements of a method."""
        out: List[str] = []
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Call):
                name = self.resolve(_dotted(sub.value.func))
                if name is not None:
                    out.append(name)
        return out

    # -- strings, env vars, argparse, counters --------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        # REPRO_X env-var constants (`JOBS_ENV_VAR = "REPRO_BENCH_JOBS"`)
        # and string-collection constants (the obs name registry,
        # REPORTING_COUNTER_PREFIXES) at module level
        if not self._func_stack and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                value = node.value
                if (
                    isinstance(value, ast.Constant)
                    and isinstance(value.value, str)
                    and _ENV_RE.fullmatch(value.value)
                ):
                    self.env_consts[target.id] = value.value
                strings = _collect_string_elts(value)
                if strings is not None:
                    self.string_consts[target.id] = strings
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            not self._func_stack
            and isinstance(node.target, ast.Name)
            and node.value is not None
        ):
            strings = _collect_string_elts(node.value)
            if strings is not None:
                self.string_consts[node.target.id] = strings
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str) and _ENV_RE.fullmatch(node.value):
            self._note_env(node.value, node.lineno)

    def visit_Name(self, node: ast.Name) -> None:
        # a reference to an env-var constant counts as touching the var
        env = self.env_consts.get(node.id)
        if env is not None and self._func_stack:
            self._note_env(env, node.lineno)

    def _note_env(self, name: str, line: int) -> None:
        enclosing = self._func_stack[-1] if self._func_stack else ""
        self.env_vars.append(
            {"name": name, "line": line, "function": enclosing}
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr == "add_argument":
                self._note_argparse(node)
            elif func.attr in ("counter", "timer"):
                self._note_counter_site(node, func.attr)
        self.generic_visit(node)

    def _note_argparse(self, node: ast.Call) -> None:
        flag = None
        if node.args and isinstance(node.args[0], ast.Constant):
            value = node.args[0].value
            if isinstance(value, str) and value.startswith("--"):
                flag = value
        help_text = ""
        env_in_default = False
        for kw in node.keywords:
            if kw.arg == "help":
                for sub in ast.walk(kw.value):
                    if isinstance(sub, ast.Constant) and isinstance(
                        sub.value, str
                    ):
                        help_text += sub.value
            if kw.arg == "default":
                for sub in ast.walk(kw.value):
                    if isinstance(sub, ast.Constant) and isinstance(
                        sub.value, str
                    ):
                        if _ENV_RE.search(sub.value):
                            env_in_default = True
        if flag is not None or help_text:
            self.argparse_flags.append(
                {
                    "flag": flag,
                    "line": node.lineno,
                    "help": help_text,
                    "env_in_default": env_in_default,
                }
            )

    def _note_counter_site(self, node: ast.Call, kind: str) -> None:
        if not node.args:
            return
        arg = node.args[0]
        name: Optional[str] = None
        prefix: Optional[str] = None
        dynamic = False
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            name = arg.value
        elif isinstance(arg, ast.JoinedStr):
            dynamic = True
            first = arg.values[0] if arg.values else None
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                prefix = first.value
        else:
            return  # a plain variable: a re-emission path, not a name
        if name is not None and "." not in name:
            return  # not a dotted metric name (test scaffolding)
        self.counter_sites.append(
            {
                "kind": kind,
                "name": name,
                "prefix": prefix,
                "dynamic": dynamic,
                "line": node.lineno,
            }
        )


def _collect_string_elts(
    node: ast.AST,
) -> Optional[List[Tuple[str, int]]]:
    """Strings (with lines) of a literal set/tuple/list/frozenset({...})."""
    if isinstance(node, ast.Call):
        callee = _dotted(node.func)
        if callee in ("frozenset", "set", "tuple", "list") and node.args:
            return _collect_string_elts(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out: List[Tuple[str, int]] = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append((elt.value, elt.lineno))
            else:
                return None
        return out
    return None


def summarize_module(
    tree: ast.AST, path: str, suppressions: Dict[int, List[str]]
) -> Dict[str, Any]:
    """Extract the cross-file summary for one parsed module."""
    from repro.lint.streamflow import extract_stream_facts

    module = module_name_for(path)
    visitor = _SummaryVisitor(path, module)
    visitor.visit(tree)
    return {
        "schema": SUMMARY_SCHEMA,
        "path": path,
        "module": module,
        "aliases": visitor.aliases,
        "classes": visitor.classes,
        "functions": visitor.functions,
        "env_vars": visitor.env_vars,
        "env_consts": visitor.env_consts,
        "argparse_flags": visitor.argparse_flags,
        "counter_sites": visitor.counter_sites,
        "string_consts": {
            k: [[s, ln] for s, ln in v]
            for k, v in visitor.string_consts.items()
        },
        "stream": extract_stream_facts(tree, visitor),
        "suppressions": {
            str(line): codes for line, codes in suppressions.items()
        },
    }


def summarize_doc(path: str, text: str) -> Dict[str, Any]:
    """Token scan of one markdown file (env vars, metric names, flags)."""
    env: Dict[str, int] = {}
    metrics: Dict[str, int] = {}
    flags: Set[str] = set()
    for line_no, line in enumerate(text.splitlines(), start=1):
        for match in _ENV_RE.finditer(line):
            env.setdefault(match.group(0), line_no)
        for match in _DOC_METRIC_RE.finditer(line):
            metrics.setdefault(match.group(1), line_no)
        for match in _FLAG_RE.finditer(line):
            flags.add(match.group(0))
    return {
        "schema": SUMMARY_SCHEMA,
        "path": path,
        "env": env,
        "metrics": metrics,
        "flags": sorted(flags),
    }


def discover_doc_files(root: str = ".") -> List[str]:
    """The markdown files the model folds in, relative to ``root``."""
    out: List[str] = []
    for directory in DOC_GLOB_DIRS:
        full = os.path.join(root, directory)
        if os.path.isdir(full):
            for name in sorted(os.listdir(full)):
                if name.endswith(".md"):
                    out.append(os.path.join(full, name))
    for name in DOC_EXTRA_FILES:
        full = os.path.join(root, name)
        if os.path.isfile(full):
            out.append(full)
    return out


@dataclass
class ClassRef:
    """One class with enough context to walk the project hierarchy."""

    path: str
    module: str
    name: str
    info: Dict[str, Any]

    @property
    def canonical(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class ProjectModel:
    """Aggregated phase-1 facts the cross-file checkers query."""

    files: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    docs: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: canonical "module.Class" -> ClassRef
    class_table: Dict[str, ClassRef] = field(default_factory=dict)
    #: short class name -> canonical ids (for fallback resolution)
    class_index: Dict[str, List[str]] = field(default_factory=dict)

    @classmethod
    def build(
        cls,
        summaries: Sequence[Dict[str, Any]],
        doc_summaries: Sequence[Dict[str, Any]],
    ) -> "ProjectModel":
        model = cls()
        for summary in summaries:
            model.files[summary["path"]] = summary
            for name, info in summary["classes"].items():
                ref = ClassRef(
                    path=summary["path"],
                    module=summary["module"],
                    name=name,
                    info=info,
                )
                model.class_table[ref.canonical] = ref
                model.class_index.setdefault(name, []).append(ref.canonical)
        for doc in doc_summaries:
            model.docs[doc["path"]] = doc
        return model

    # -- class hierarchy ------------------------------------------------
    def resolve_class(
        self, name: str, from_summary: Optional[Dict[str, Any]] = None
    ) -> Optional[ClassRef]:
        """Find a class by canonical id, alias, or unique short name."""
        if name in self.class_table:
            return self.class_table[name]
        short = name.split(".")[-1]
        if from_summary is not None:
            local = f"{from_summary['module']}.{short}"
            if local in self.class_table:
                return self.class_table[local]
        candidates = self.class_index.get(short, [])
        if len(candidates) == 1:
            return self.class_table[candidates[0]]
        return None

    def ancestry(self, ref: ClassRef) -> List[ClassRef]:
        """``ref`` plus every project-defined ancestor, nearest first."""
        out: List[ClassRef] = []
        queue: List[ClassRef] = [ref]
        seen: Set[str] = set()
        while queue:
            current = queue.pop(0)
            if current.canonical in seen:
                continue
            seen.add(current.canonical)
            out.append(current)
            summary = self.files.get(current.path)
            for base in current.info["bases"]:
                parent = self.resolve_class(base, summary)
                if parent is not None:
                    queue.append(parent)
        return out

    def base_names(self, ref: ClassRef) -> Set[str]:
        """Short names of every (transitive) base, project or external."""
        out: Set[str] = set()
        for ancestor in self.ancestry(ref):
            for base in ancestor.info["bases"]:
                out.add(base.split(".")[-1])
        return out

    def methods_of(
        self, ref: ClassRef, stop_at: Set[str]
    ) -> Dict[str, Tuple[str, int]]:
        """Methods defined by ``ref`` or project ancestors, nearest-first,
        excluding classes whose short name is in ``stop_at`` (the
        protocol roots whose defaults don't count as implementations)."""
        out: Dict[str, Tuple[str, int]] = {}
        for ancestor in self.ancestry(ref):
            if ancestor.name in stop_at:
                continue
            for method, line in ancestor.info["methods"].items():
                out.setdefault(method, (ancestor.path, line))
        return out

    # -- suppression-aware emission --------------------------------------
    def is_suppressed(self, path: str, line: int, code: str) -> bool:
        summary = self.files.get(path)
        if summary is None:
            return False
        return code in summary["suppressions"].get(str(line), [])

    # -- doc queries ----------------------------------------------------
    def docs_mentioning_env(self, name: str) -> List[str]:
        return [
            path for path, doc in self.docs.items() if name in doc["env"]
        ]

    def doc_flags(self) -> Set[str]:
        out: Set[str] = set()
        for doc in self.docs.values():
            out.update(doc["flags"])
        return out

    # -- project-wide iterators -----------------------------------------
    def src_files(self) -> List[Dict[str, Any]]:
        """Summaries for package (non-test) modules, sorted by path."""
        return [
            self.files[path]
            for path in sorted(self.files)
            if not _is_test_path(path)
        ]

    def all_files(self) -> List[Dict[str, Any]]:
        return [self.files[path] for path in sorted(self.files)]


def _is_test_path(path: str) -> bool:
    parts = path.replace("\\", "/").split("/")
    return any(part in ("tests", "test") for part in parts[:-1]) or parts[
        -1
    ].startswith("test_")
