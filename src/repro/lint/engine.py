"""File walking, noqa handling, and the public lint entry points.

Suppression syntax
------------------
A violation on line ``L`` is suppressed by a comment *on that line* (the
first line of the flagged statement) of the form::

    engine.rng = np.random.default_rng()  # repro: noqa=RPL003(caller opts out)

The reason string is **mandatory** — a directive without one is itself a
violation (``RPL009``), so the suppression inventory stays reviewable.
Multiple codes may be suppressed on one line::

    # repro: noqa=RPL003(api default), RPL004(pinned legacy stream)
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.lint.rules import RULES, check_tree, select_codes

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.project import ProjectModel

#: what `python -m repro.lint` checks when no paths are given
DEFAULT_PATHS: Tuple[str, ...] = ("src", "tests")

#: a suppression comment (the whole directive payload captured)
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\s*=\s*(?P<payload>.+?)\s*$")

#: one entry of the payload: RPLxxx with a mandatory (reason)
_ENTRY_RE = re.compile(r"^(?P<code>RPL\d{3})\s*(?:\(\s*(?P<reason>[^()]*?)\s*\))?$")


class LintError(Exception):
    """A file could not be linted (unreadable or unparseable)."""


@dataclass(frozen=True, order=True)
class Violation:
    """One finding, carrying everything the reports and baseline need."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = field(compare=False)
    line_text: str = field(compare=False, default="")

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file.

        Binds the *file*, the *rule*, and the *content* of the flagged
        line, so unrelated edits that shift line numbers do not churn
        the baseline, while any change to the flagged line itself
        surfaces as a new violation.
        """
        digest = hashlib.sha256(
            self.line_text.strip().encode("utf-8")
        ).hexdigest()[:12]
        return f"{self.path}::{self.code}::{digest}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.code} {self.message}\n    hint: {self.hint}"
        )


@dataclass(frozen=True)
class _Suppression:
    code: str
    reason: str


def _parse_directives(
    source: str, path: str
) -> Tuple[Dict[int, List[_Suppression]], List[Violation]]:
    """Extract per-line suppressions; malformed directives become RPL009."""
    lines = source.splitlines()
    suppressions: Dict[int, List[_Suppression]] = {}
    bad: List[Violation] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}, []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        line_no = token.start[0]
        line_text = lines[line_no - 1] if line_no <= len(lines) else ""
        for raw_entry in match.group("payload").split(","):
            entry = _ENTRY_RE.match(raw_entry.strip())
            reason = entry.group("reason") if entry else None
            code = entry.group("code") if entry else None
            if (
                entry is None
                or not reason
                or code not in RULES
            ):
                detail = (
                    f"`{raw_entry.strip()}`"
                    if entry is None or code not in RULES
                    else f"`{code}` has no reason"
                )
                bad.append(
                    Violation(
                        path=path,
                        line=line_no,
                        col=token.start[1],
                        code="RPL009",
                        message=f"{RULES['RPL009'].summary}: {detail}",
                        hint=RULES["RPL009"].hint,
                        line_text=line_text,
                    )
                )
                continue
            suppressions.setdefault(line_no, []).append(
                _Suppression(code=code, reason=reason)
            )
    return suppressions, bad


def _check_parsed(
    tree: ast.AST, source: str, path: str
) -> Tuple[List[Violation], Dict[int, List[_Suppression]]]:
    """Per-file violations for *all* codes, post-suppression."""
    lines = source.splitlines()
    suppressions, bad_directives = _parse_directives(source, path)
    out: List[Violation] = list(bad_directives)
    for raw in check_tree(tree, path):
        if any(
            s.code == raw.code for s in suppressions.get(raw.line, [])
        ):
            continue
        out.append(
            Violation(
                path=path,
                line=raw.line,
                col=raw.col,
                code=raw.code,
                message=raw.message,
                hint=RULES[raw.code].hint,
                line_text=(
                    lines[raw.line - 1] if raw.line <= len(lines) else ""
                ),
            )
        )
    return sorted(out), suppressions


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint one module's source text; returns unsuppressed violations."""
    active = select_codes(select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from None
    violations, _ = _check_parsed(tree, source, path)
    return [v for v in violations if v.code in active]


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a deterministic .py file list."""
    seen: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        if not os.path.isdir(path):
            raise LintError(f"no such file or directory: {path}")
        for root, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(root, name)
                if full not in seen:
                    seen.add(full)
                    yield full


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint files and directory trees; violations sorted by position."""
    out: List[Violation] = []
    for file_path in _iter_python_files(paths):
        try:
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from None
        out.extend(lint_source(source, _normalize(file_path), select))
    return sorted(out)


def _normalize(path: str) -> str:
    """Repo-stable path spelling (relative, forward slashes)."""
    return os.path.relpath(path).replace(os.sep, "/")


# ---------------------------------------------------------------------------
# Two-phase project analysis (RPL011–RPL014) with an incremental cache
# ---------------------------------------------------------------------------

#: bump together with any change to rules, summaries, or cache layout —
#: a mismatched cache is silently discarded, never migrated
CACHE_SCHEMA = 1

#: default on-disk cache location (gitignored; safe to delete anytime)
DEFAULT_CACHE = ".reprolint-cache.json"


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _violation_to_dict(violation: Violation) -> Dict[str, object]:
    return {
        "path": violation.path,
        "line": violation.line,
        "col": violation.col,
        "code": violation.code,
        "message": violation.message,
        "line_text": violation.line_text,
    }


def _violation_from_dict(data: Dict[str, object]) -> Violation:
    code = str(data["code"])
    return Violation(
        path=str(data["path"]),
        line=int(data["line"]),  # type: ignore[arg-type]
        col=int(data["col"]),  # type: ignore[arg-type]
        code=code,
        message=str(data["message"]),
        hint=RULES[code].hint if code in RULES else "",
        line_text=str(data["line_text"]),
    )


def _process_file(job: Tuple[str, str, str]) -> Dict[str, object]:
    """Parse + per-file lint + summarize one module (worker-safe).

    ``job`` is ``(normalized_path, content_digest, source)``; the result
    is exactly the cache entry stored for that file.
    """
    from repro.lint.project import summarize_module

    norm_path, content_digest, source = job
    try:
        tree = ast.parse(source, filename=norm_path)
    except SyntaxError as exc:
        return {"path": norm_path, "error": f"cannot parse: {exc}"}
    violations, suppressions = _check_parsed(tree, source, norm_path)
    summary = summarize_module(
        tree,
        norm_path,
        {
            line: [s.code for s in entries]
            for line, entries in suppressions.items()
        },
    )
    return {
        "path": norm_path,
        "hash": content_digest,
        "violations": [_violation_to_dict(v) for v in violations],
        "summary": summary,
    }


def _load_cache(cache_path: Optional[str]) -> Dict[str, Dict[str, object]]:
    if cache_path is None or not os.path.exists(cache_path):
        return {}
    try:
        with open(cache_path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError, ValueError):
        return {}
    if not isinstance(data, dict) or data.get("schema") != CACHE_SCHEMA:
        return {}
    return data  # type: ignore[return-value]


def _write_cache(
    cache_path: str, payload: Dict[str, object]
) -> None:
    payload["schema"] = CACHE_SCHEMA
    try:
        with open(cache_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
    except OSError:
        pass  # a cache that cannot be written is just a cold run


def _project_phase(model: "ProjectModel") -> List[Dict[str, object]]:
    """Run the cross-file checkers; suppression-filtered plain dicts."""
    from repro.lint.parity import check_parity
    from repro.lint.registry import check_counters, check_knobs
    from repro.lint.streamflow import check_streams

    out: List[Dict[str, object]] = []
    for checker in (check_streams, check_knobs, check_counters, check_parity):
        for raw in checker(model):
            if model.is_suppressed(
                str(raw["path"]), int(raw["line"]), str(raw["code"])
            ):
                continue
            out.append(raw)
    return out


def lint_project(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache_path: Optional[str] = None,
) -> List[Violation]:
    """Two-phase lint: per-file rules plus the cross-file families.

    Phase 1 parses every file once (in parallel with ``jobs > 1``) into
    serializable summaries; phase 2 aggregates them into a
    :class:`~repro.lint.project.ProjectModel` and runs RPL011–RPL014
    over it. Both phases are cached in ``cache_path`` keyed by content
    hash, so a warm run re-parses only edited files and re-runs phase 2
    only when any summary or doc changed.

    The cross-file rules reason about *everything they were shown* — run
    them over the full default path set (``src tests``); a partial file
    list yields a partial model and correspondingly partial findings.
    """
    active = select_codes(select)
    cache = _load_cache(cache_path)
    cached_files = cache.get("files", {})
    if not isinstance(cached_files, dict):
        cached_files = {}

    entries: Dict[str, Dict[str, object]] = {}
    to_parse: List[Tuple[str, str, str]] = []
    for file_path in _iter_python_files(paths):
        try:
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from None
        norm = _normalize(file_path)
        content_digest = _digest(source.encode("utf-8"))
        cached = cached_files.get(norm)
        if (
            isinstance(cached, dict)
            and cached.get("hash") == content_digest
            and "summary" in cached
        ):
            entries[norm] = cached
        else:
            to_parse.append((norm, content_digest, source))

    results: List[Dict[str, object]]
    if jobs > 1 and len(to_parse) > 1:
        import concurrent.futures

        with concurrent.futures.ProcessPoolExecutor(
            max_workers=jobs
        ) as pool:
            results = list(pool.map(_process_file, to_parse, chunksize=8))
    else:
        results = [_process_file(job) for job in to_parse]
    for result in results:
        error = result.get("error")
        if error:
            raise LintError(f"{result['path']}: {error}")
        entries[str(result["path"])] = result

    from repro.lint.project import (
        ProjectModel,
        discover_doc_files,
        summarize_doc,
    )

    cached_docs = cache.get("docs", {})
    if not isinstance(cached_docs, dict):
        cached_docs = {}
    doc_entries: Dict[str, Dict[str, object]] = {}
    for doc_path in discover_doc_files("."):
        try:
            with open(doc_path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError:
            continue
        norm = _normalize(doc_path)
        doc_digest = _digest(text.encode("utf-8"))
        cached = cached_docs.get(norm)
        if isinstance(cached, dict) and cached.get("hash") == doc_digest:
            doc_entries[norm] = cached
        else:
            doc_entries[norm] = {
                "hash": doc_digest,
                "summary": summarize_doc(norm, text),
            }

    model_digest = _digest(
        json.dumps(
            [
                [path, entries[path]["hash"]]
                for path in sorted(entries)
            ]
            + [
                [path, doc_entries[path]["hash"]]
                for path in sorted(doc_entries)
            ],
            separators=(",", ":"),
        ).encode("utf-8")
    )
    cached_project = cache.get("project", {})
    project_raw: List[Dict[str, object]]
    if (
        isinstance(cached_project, dict)
        and cached_project.get("digest") == model_digest
        and isinstance(cached_project.get("violations"), list)
    ):
        project_raw = cached_project["violations"]  # type: ignore[assignment]
    else:
        model = ProjectModel.build(
            [entries[path]["summary"] for path in sorted(entries)],  # type: ignore[misc]
            [
                dict(doc_entries[path]["summary"], path=path)  # type: ignore[call-overload]
                for path in sorted(doc_entries)
            ],
        )
        project_raw = _project_phase(model)

    if cache_path is not None:
        _write_cache(
            cache_path,
            {
                "files": entries,
                "docs": doc_entries,
                "project": {
                    "digest": model_digest,
                    "violations": project_raw,
                },
            },
        )

    out: List[Violation] = []
    for entry in entries.values():
        for data in entry["violations"]:  # type: ignore[union-attr]
            violation = _violation_from_dict(data)
            if violation.code in active:
                out.append(violation)
    text_cache: Dict[str, List[str]] = {}
    for raw in project_raw:
        code = str(raw["code"])
        if code not in active:
            continue
        path = str(raw["path"])
        line = int(raw["line"])  # type: ignore[arg-type]
        out.append(
            Violation(
                path=path,
                line=line,
                col=int(raw["col"]),  # type: ignore[arg-type]
                code=code,
                message=str(raw["message"]),
                hint=RULES[code].hint,
                line_text=_file_line(path, line, text_cache),
            )
        )
    return sorted(out)


def _file_line(
    path: str, line: int, text_cache: Dict[str, List[str]]
) -> str:
    if path not in text_cache:
        try:
            with open(path, encoding="utf-8") as handle:
                text_cache[path] = handle.read().splitlines()
        except OSError:
            text_cache[path] = []
    lines = text_cache[path]
    return lines[line - 1] if 0 < line <= len(lines) else ""
