"""File walking, noqa handling, and the public lint entry points.

Suppression syntax
------------------
A violation on line ``L`` is suppressed by a comment *on that line* (the
first line of the flagged statement) of the form::

    engine.rng = np.random.default_rng()  # repro: noqa=RPL003(caller opts out)

The reason string is **mandatory** — a directive without one is itself a
violation (``RPL009``), so the suppression inventory stays reviewable.
Multiple codes may be suppressed on one line::

    # repro: noqa=RPL003(api default), RPL004(pinned legacy stream)
"""

from __future__ import annotations

import ast
import hashlib
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.rules import RULES, check_tree, select_codes

#: what `python -m repro.lint` checks when no paths are given
DEFAULT_PATHS: Tuple[str, ...] = ("src", "tests")

#: a suppression comment (the whole directive payload captured)
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\s*=\s*(?P<payload>.+?)\s*$")

#: one entry of the payload: RPLxxx with a mandatory (reason)
_ENTRY_RE = re.compile(r"^(?P<code>RPL\d{3})\s*(?:\(\s*(?P<reason>[^()]*?)\s*\))?$")


class LintError(Exception):
    """A file could not be linted (unreadable or unparseable)."""


@dataclass(frozen=True, order=True)
class Violation:
    """One finding, carrying everything the reports and baseline need."""

    path: str
    line: int
    col: int
    code: str
    message: str
    hint: str = field(compare=False)
    line_text: str = field(compare=False, default="")

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline file.

        Binds the *file*, the *rule*, and the *content* of the flagged
        line, so unrelated edits that shift line numbers do not churn
        the baseline, while any change to the flagged line itself
        surfaces as a new violation.
        """
        digest = hashlib.sha256(
            self.line_text.strip().encode("utf-8")
        ).hexdigest()[:12]
        return f"{self.path}::{self.code}::{digest}"

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.code} {self.message}\n    hint: {self.hint}"
        )


@dataclass(frozen=True)
class _Suppression:
    code: str
    reason: str


def _parse_directives(
    source: str, path: str
) -> Tuple[Dict[int, List[_Suppression]], List[Violation]]:
    """Extract per-line suppressions; malformed directives become RPL009."""
    lines = source.splitlines()
    suppressions: Dict[int, List[_Suppression]] = {}
    bad: List[Violation] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}, []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA_RE.search(token.string)
        if match is None:
            continue
        line_no = token.start[0]
        line_text = lines[line_no - 1] if line_no <= len(lines) else ""
        for raw_entry in match.group("payload").split(","):
            entry = _ENTRY_RE.match(raw_entry.strip())
            reason = entry.group("reason") if entry else None
            code = entry.group("code") if entry else None
            if (
                entry is None
                or not reason
                or code not in RULES
            ):
                detail = (
                    f"`{raw_entry.strip()}`"
                    if entry is None or code not in RULES
                    else f"`{code}` has no reason"
                )
                bad.append(
                    Violation(
                        path=path,
                        line=line_no,
                        col=token.start[1],
                        code="RPL009",
                        message=f"{RULES['RPL009'].summary}: {detail}",
                        hint=RULES["RPL009"].hint,
                        line_text=line_text,
                    )
                )
                continue
            suppressions.setdefault(line_no, []).append(
                _Suppression(code=code, reason=reason)
            )
    return suppressions, bad


def lint_source(
    source: str,
    path: str = "<string>",
    select: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint one module's source text; returns unsuppressed violations."""
    active = select_codes(select)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise LintError(f"{path}: cannot parse: {exc}") from None
    lines = source.splitlines()
    suppressions, bad_directives = _parse_directives(source, path)
    out: List[Violation] = [v for v in bad_directives if v.code in active]
    for raw in check_tree(tree, path):
        if raw.code not in active:
            continue
        if any(
            s.code == raw.code for s in suppressions.get(raw.line, [])
        ):
            continue
        rule = RULES[raw.code]
        out.append(
            Violation(
                path=path,
                line=raw.line,
                col=raw.col,
                code=raw.code,
                message=raw.message,
                hint=rule.hint,
                line_text=(
                    lines[raw.line - 1] if raw.line <= len(lines) else ""
                ),
            )
        )
    return sorted(out)


def _iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a deterministic .py file list."""
    seen: Set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path not in seen:
                seen.add(path)
                yield path
            continue
        if not os.path.isdir(path):
            raise LintError(f"no such file or directory: {path}")
        for root, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if not d.startswith(".") and d != "__pycache__"
            )
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                full = os.path.join(root, name)
                if full not in seen:
                    seen.add(full)
                    yield full


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Lint files and directory trees; violations sorted by position."""
    out: List[Violation] = []
    for file_path in _iter_python_files(paths):
        try:
            with open(file_path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            raise LintError(f"cannot read {file_path}: {exc}") from None
        out.extend(lint_source(source, _normalize(file_path), select))
    return sorted(out)


def _normalize(path: str) -> str:
    """Repo-stable path spelling (relative, forward slashes)."""
    return os.path.relpath(path).replace(os.sep, "/")
