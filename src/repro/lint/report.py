"""Text and JSON rendering of a lint run."""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence

from repro.lint.baseline import BaselineDrift
from repro.lint.engine import Violation
from repro.lint.rules import RULES


def _violation_dict(violation: Violation) -> Dict[str, Any]:
    return {
        "path": violation.path,
        "line": violation.line,
        "col": violation.col + 1,
        "code": violation.code,
        "name": RULES[violation.code].name,
        "message": violation.message,
        "hint": violation.hint,
        "fingerprint": violation.fingerprint,
    }


def render_json(
    reported: Sequence[Violation],
    drift: Optional[BaselineDrift],
    checked_paths: Sequence[str],
) -> str:
    """Machine-readable report (the CI artifact format)."""
    counts = Counter(v.code for v in reported)
    payload: Dict[str, Any] = {
        "tool": "reprolint",
        "paths": list(checked_paths),
        "clean": not reported and (drift is None or drift.clean),
        "counts": {code: counts[code] for code in sorted(counts)},
        "violations": [_violation_dict(v) for v in reported],
    }
    if drift is not None:
        payload["baseline"] = {
            "suppressed": drift.suppressed,
            "new": len(drift.new),
            "stale": list(drift.stale),
        }
    return json.dumps(payload, indent=2) + "\n"


def render_text(
    reported: Sequence[Violation],
    drift: Optional[BaselineDrift],
    checked_paths: Sequence[str],
) -> str:
    """Human-readable report."""
    lines: List[str] = [violation.render() for violation in reported]
    if drift is not None and drift.stale:
        lines.append(
            f"stale baseline: {len(drift.stale)} entr"
            f"{'y' if len(drift.stale) == 1 else 'ies'} no longer match "
            "any violation — the debt was paid; regenerate the baseline "
            "with --write-baseline so the shrink is committed:"
        )
        lines.extend(f"    {fingerprint}" for fingerprint in drift.stale)
    summary = (
        f"reprolint: {len(reported)} violation(s) in "
        f"{', '.join(checked_paths)}"
    )
    if drift is not None:
        summary += f" ({drift.suppressed} baselined)"
    if not reported and (drift is None or drift.clean):
        summary += " — clean"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_rules() -> str:
    """The ``--list-rules`` table."""
    lines = ["reprolint rules (see docs/static_analysis.md):"]
    for code in sorted(RULES):
        rule = RULES[code]
        lines.append(f"  {code} [{rule.name}] {rule.summary}")
        lines.append(f"         fix: {rule.hint}")
    return "\n".join(lines) + "\n"
