"""Rule catalogue and the AST checker behind ``reprolint``.

Each rule protects one clause of the repo's determinism contract (see
``docs/static_analysis.md`` for the full rationale per code). Rules are
deliberately *project-specific*: they know the repo's stream-derivation
idioms (:class:`~repro.rng.RngFactory`, ``SeedSequence.spawn``), which
packages are determinism-critical, and what the batched-engine parity
contract demands of lane-indexed classes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable code, what it flags, and how to fix it."""

    code: str
    name: str
    summary: str
    hint: str


#: packages whose modules feed seeded engine state; wall-clock reads and
#: hash-order iteration inside them are determinism hazards (RPL005/006)
CRITICAL_PACKAGES: Tuple[str, ...] = (
    "sim",
    "billboard",
    "adversaries",
    "strategies",
    "faults",
)

RULES: Dict[str, Rule] = {
    rule.code: rule
    for rule in (
        Rule(
            "RPL001",
            "numpy-global-rng",
            "call into numpy's legacy global RNG (np.random.<fn>)",
            "draw from an explicit numpy.random.Generator stream "
            "(repro.rng.make_generator / RngFactory)",
        ),
        Rule(
            "RPL002",
            "stdlib-rng",
            "import of the stdlib `random`/`secrets` modules",
            "all randomness must flow through seeded numpy Generator "
            "streams (repro.rng); stdlib RNGs bypass the seed tree",
        ),
        Rule(
            "RPL003",
            "unseeded-generator",
            "generator/seed-sequence built without an explicit seed",
            "pass a seed or SeedSequence; unseeded construction pulls "
            "OS entropy and is unreproducible",
        ),
        Rule(
            "RPL004",
            "seed-arithmetic",
            "arithmetic seed derivation (e.g. `seed + 1`) feeding an rng",
            "derive independent streams with SeedSequence(seed).spawn(k) "
            "or repro.rng.RngFactory; nearby integer seeds give "
            "correlated PCG64 states",
        ),
        Rule(
            "RPL005",
            "wall-clock",
            "wall-clock/OS-entropy read in a determinism-critical package",
            "engine packages must be pure functions of (instance, seed); "
            "take timestamps outside sim/billboard/adversaries/"
            "strategies/faults",
        ),
        Rule(
            "RPL006",
            "unordered-iteration",
            "iteration over a set in a determinism-critical package",
            "set iteration order depends on PYTHONHASHSEED; iterate "
            "sorted(...) or an explicitly ordered sequence",
        ),
        Rule(
            "RPL007",
            "mutable-default",
            "mutable default argument",
            "default to None and create the object inside the function; "
            "a shared mutable default leaks state across calls",
        ),
        Rule(
            "RPL008",
            "batched-scalar-rng",
            "scalar `self.rng` used inside a lane-indexed (Batched*) class",
            "batched classes must draw from their lane's pinned stream "
            "(e.g. self._rngs[lane]) in scalar order, or the "
            "batched-vs-scalar bit-identity contract breaks",
        ),
        Rule(
            "RPL009",
            "bare-suppression",
            "malformed `# repro: noqa` suppression (missing reason)",
            "write `# repro: noqa=RPLxxx(reason)` — every suppression "
            "must say why the contract does not apply",
        ),
        Rule(
            "RPL010",
            "dense-player-allocation",
            "dense per-player allocation in a billboard module",
            "billboard storage must scale with *active* players, not n "
            "(the sparse-substrate contract); keep per-player state in "
            "columnar/dict form (repro.billboard.sparse) or allocate "
            "through repro.world.player_array",
        ),
        Rule(
            "RPL011",
            "rng-stream-flow",
            "rng stream misuse across spawn/handoff paths",
            "every SeedSequence child feeds exactly one component: spawn "
            "enough children, index each exactly once, and never hand "
            "the same stream to two engine/component paths — shared "
            "streams correlate what the model says is independent",
        ),
        Rule(
            "RPL012",
            "knob-trio-drift",
            "run-configuration knob missing part of its flag/env/resolver "
            "trio or its docs entry",
            "every REPRO_* knob must be reachable three ways — a CLI "
            "flag whose help names the variable, the environment "
            "variable itself, and a default_*/resolve_* (or argparse "
            "default) path — and be documented in docs/",
        ),
        Rule(
            "RPL013",
            "counter-registry-drift",
            "obs counter/timer name out of sync with the declared "
            "registry or docs",
            "declare every metric name in repro.obs.names and document "
            "it in docs/observability.md; an undeclared name at a call "
            "site is how a typo silently creates a parallel counter",
        ),
        Rule(
            "RPL014",
            "batched-scalar-parity",
            "batched twin's hook surface diverges from its scalar class",
            "a class reachable via make_batched must implement the "
            "batched counterpart of every hook its scalar twin "
            "overrides (reset_lanes, choose_probes_batch, "
            "handle_results_batch, on_player_restart, finished, info) "
            "or lanes silently drop behavior the scalar engine has",
        ),
    )
}

#: rule families evaluated over the whole project model (phase 2) rather
#: than one file's AST; engine.py routes these to the project checkers
PROJECT_RULES: Tuple[str, ...] = ("RPL011", "RPL012", "RPL013", "RPL014")

#: the only numpy.random attributes that are part of the Generator-era
#: seeding API; calling anything else on numpy.random is the legacy
#: global-state interface (RPL001)
_NP_RANDOM_ALLOWED: Set[str] = {
    "default_rng",
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}

#: callables that consume a seed/SeedSequence as their first argument —
#: the places where RPL003 (missing seed) and RPL004 (seed arithmetic)
#: apply. Names cover both dotted resolution and bare imports of the
#: repo's own helpers.
_SEED_CONSUMERS: Set[str] = {
    "numpy.random.default_rng",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
    "numpy.random.MT19937",
    "repro.rng.make_generator",
    "repro.rng.make_seed_sequence",
    "make_generator",
    "make_seed_sequence",
    "RngFactory.from_seed",
}

#: wall-clock / OS-entropy reads (RPL005). ``time.sleep`` is absent on
#: purpose: pacing (retry backoff) never feeds engine state.
_WALL_CLOCK: Set[str] = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
}

#: method names that read the clock on a datetime/date object (RPL005)
_DATETIME_NOW: Set[str] = {"now", "utcnow", "today"}

#: base classes that mark a class as lane-indexed (RPL008)
_BATCHED_BASES: Set[str] = {"BatchedStrategy", "BatchedAdversary"}

#: numpy allocators that materialize a whole array up front (RPL010)
_DENSE_ALLOCATORS: Set[str] = {
    "numpy.zeros",
    "numpy.empty",
    "numpy.full",
    "numpy.ones",
}

#: names that denote the *total* player count: an allocation sized by one
#: of these inside ``billboard/`` is dense per-player state (RPL010)
_PLAYER_DIM_NAMES: Set[str] = {"n", "n_players", "num_players"}


def is_critical_path(path: str) -> bool:
    """Whether ``path`` lives in a determinism-critical engine package."""
    parts = path.replace("\\", "/").split("/")
    return any(part in CRITICAL_PACKAGES for part in parts[:-1])


def is_billboard_path(path: str) -> bool:
    """Whether ``path`` lives in the billboard package (RPL010 scope)."""
    parts = path.replace("\\", "/").split("/")
    return "billboard" in parts[:-1]


def _mentions_player_dim(node: ast.AST) -> bool:
    """Whether a shape expression is sized by the total player count."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _PLAYER_DIM_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _PLAYER_DIM_NAMES:
            return True
    return False


@dataclass(frozen=True, order=True)
class RawViolation:
    """A rule hit before suppression/baseline processing."""

    line: int
    col: int
    code: str
    message: str


def _dotted_name(node: ast.AST) -> Optional[str]:
    """Resolve ``a.b.c`` attribute chains to a dotted string, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _mentions_seed(node: ast.AST) -> bool:
    """Whether any name/attribute inside ``node`` is seed-like."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "seed" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "seed" in sub.attr.lower():
            return True
    return False


def _has_seed_arithmetic(node: ast.AST) -> bool:
    """Whether ``node`` contains a binary op over a seed-like operand.

    ``SeedSequence(seed).spawn(k)`` has no BinOp and passes; ``seed + 1``,
    ``2 * seed + i`` and friends are flagged.
    """
    return any(
        isinstance(sub, ast.BinOp) and _mentions_seed(sub)
        for sub in ast.walk(node)
    )


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


class _Checker(ast.NodeVisitor):
    """Single-pass AST visitor emitting :class:`RawViolation` records."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.critical = is_critical_path(path)
        self.billboard = is_billboard_path(path)
        self.violations: List[RawViolation] = []
        #: local alias -> canonical module (e.g. ``np`` -> ``numpy``)
        self._module_aliases: Dict[str, str] = {}
        #: local name -> canonical dotted origin for from-imports
        self._name_origins: Dict[str, str] = {}
        #: stack of (class name, is_batched) for RPL008
        self._class_stack: List[Tuple[str, bool]] = []

    # -- bookkeeping ----------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            self._module_aliases[local] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
            root = alias.name.split(".")[0]
            if root in ("random", "secrets"):
                self._emit(node, "RPL002", f"`import {alias.name}`")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        root = module.split(".")[0]
        if root in ("random", "secrets") and node.level == 0:
            self._emit(node, "RPL002", f"`from {module} import ...`")
        for alias in node.names:
            local = alias.asname or alias.name
            if module:
                self._name_origins[local] = f"{module}.{alias.name}"
            if module == "numpy.random" and alias.name not in _NP_RANDOM_ALLOWED:
                self._emit(
                    node,
                    "RPL001",
                    f"`from numpy.random import {alias.name}` exposes the "
                    "legacy global RNG",
                )
        self.generic_visit(node)

    def _resolve(self, func: ast.AST) -> Optional[str]:
        """Canonical dotted name of a call target, through local aliases."""
        dotted = _dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self._module_aliases:
            head = self._module_aliases[head]
            return f"{head}.{rest}" if rest else head
        if head in self._name_origins:
            origin = self._name_origins[head]
            return f"{origin}.{rest}" if rest else origin
        return dotted

    # -- class context (RPL008) ----------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        base_names = {
            name.split(".")[-1]
            for name in (_dotted_name(base) for base in node.bases)
            if name is not None
        }
        batched = bool(base_names & _BATCHED_BASES) or (
            node.name.startswith("Batched") and "PerLane" not in node.name
        )
        # Per-lane adapters hold one scalar instance per lane; the scalar
        # instances' own self.rng *is* that lane's pinned stream.
        if base_names & {"PerLaneStrategy", "PerLaneAdversary"}:
            batched = False
        self._class_stack.append((node.name, batched))
        self.generic_visit(node)
        self._class_stack.pop()

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            node.attr == "rng"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self._class_stack
            and self._class_stack[-1][1]
        ):
            self._emit(
                node,
                "RPL008",
                f"`self.rng` inside lane-indexed class "
                f"`{self._class_stack[-1][0]}`",
            )
        self.generic_visit(node)

    # -- calls (RPL001/003/004/005) -------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        resolved = self._resolve(node.func)
        if resolved is not None:
            self._check_numpy_legacy(node, resolved)
            self._check_seed_consumer(node, resolved)
            if self.critical:
                self._check_wall_clock(node, resolved)
            if self.billboard:
                self._check_dense_allocation(node, resolved)
        self._check_seed_keywords(node)
        self.generic_visit(node)

    def _check_dense_allocation(self, node: ast.Call, resolved: str) -> None:
        """RPL010: a numpy allocation sized by the player count inside
        ``billboard/`` defeats the sparse substrate's active-players-only
        scaling. The shape is the first positional argument or ``shape=``."""
        if resolved not in _DENSE_ALLOCATORS:
            return
        shape_args = list(node.args[:1]) + [
            kw.value for kw in node.keywords if kw.arg == "shape"
        ]
        for arg in shape_args:
            if _mentions_player_dim(arg):
                self._emit(
                    node,
                    "RPL010",
                    f"`{resolved}({ast.unparse(arg)}, ...)` is sized by "
                    "the total player count",
                )
                return

    def _check_numpy_legacy(self, node: ast.Call, resolved: str) -> None:
        prefix, _, attr = resolved.rpartition(".")
        if prefix == "numpy.random" and attr not in _NP_RANDOM_ALLOWED:
            self._emit(node, "RPL001", f"`{resolved}(...)`")

    def _check_seed_consumer(self, node: ast.Call, resolved: str) -> None:
        consumer = resolved in _SEED_CONSUMERS or (
            resolved.endswith(".from_seed") and "RngFactory" in resolved
        )
        if not consumer:
            return
        seed_args = list(node.args) + [
            kw.value
            for kw in node.keywords
            if kw.arg is not None and "seed" in kw.arg.lower()
        ]
        if not seed_args or all(_is_none(arg) for arg in seed_args):
            self._emit(node, "RPL003", f"`{resolved}()` without a seed")
        # keyword `seed=` arithmetic is flagged once, by the generic
        # keyword check below — only positional args are checked here
        for arg in node.args:
            if _has_seed_arithmetic(arg):
                self._emit(
                    node,
                    "RPL004",
                    f"`{resolved}({ast.unparse(arg)})` derives a stream "
                    "by seed arithmetic",
                )

    def _check_seed_keywords(self, node: ast.Call) -> None:
        """`seed=` keywords of *any* call must not carry seed arithmetic."""
        for kw in node.keywords:
            if kw.arg is None or "seed" not in kw.arg.lower():
                continue
            if _has_seed_arithmetic(kw.value):
                self._emit(
                    node,
                    "RPL004",
                    f"`{kw.arg}={ast.unparse(kw.value)}` derives a stream "
                    "by seed arithmetic",
                )

    def _check_wall_clock(self, node: ast.Call, resolved: str) -> None:
        if resolved in _WALL_CLOCK:
            self._emit(node, "RPL005", f"`{resolved}()`")
            return
        prefix, _, attr = resolved.rpartition(".")
        if attr in _DATETIME_NOW and prefix.split(".")[-1] in (
            "datetime",
            "date",
        ):
            self._emit(node, "RPL005", f"`{resolved}()`")

    # -- iteration order (RPL006) ---------------------------------------
    def visit_For(self, node: ast.For) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._check_set_iteration(node.iter)
        self.generic_visit(node)

    def _check_set_iteration(self, iterable: ast.AST) -> None:
        if not self.critical:
            return
        flagged: Optional[str] = None
        if isinstance(iterable, (ast.Set, ast.SetComp)):
            flagged = "a set literal"
        elif isinstance(iterable, ast.Call):
            name = self._resolve(iterable.func)
            if name in ("set", "frozenset"):
                flagged = f"`{name}(...)`"
        if flagged is not None:
            self._emit(iterable, "RPL006", f"iterating {flagged}")

    # -- defaults (RPL007) ----------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_defaults(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if not mutable and isinstance(default, ast.Call):
                name = self._resolve(default.func)
                mutable = name in (
                    "list",
                    "dict",
                    "set",
                    "bytearray",
                    "collections.defaultdict",
                    "defaultdict",
                )
            if mutable:
                self._emit(
                    default,
                    "RPL007",
                    f"default `{ast.unparse(default)}` is mutable",
                )

    # -- emission -------------------------------------------------------
    def _emit(self, node: ast.AST, code: str, detail: str) -> None:
        rule = RULES[code]
        self.violations.append(
            RawViolation(
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                code=code,
                message=f"{rule.summary}: {detail}",
            )
        )


def check_tree(tree: ast.AST, path: str) -> List[RawViolation]:
    """Run every rule over one parsed module; sorted by position."""
    checker = _Checker(path)
    checker.visit(tree)
    return sorted(checker.violations)


def iter_rules() -> Iterator[Rule]:
    """Rules in code order (for ``--list-rules`` and the docs test)."""
    for code in sorted(RULES):
        yield RULES[code]


def select_codes(select: Optional[Sequence[str]]) -> Set[str]:
    """Validate a ``--select`` list; default to every rule."""
    if not select:
        return set(RULES)
    unknown = [code for code in select if code not in RULES]
    if unknown:
        raise ValueError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(RULES))}"
        )
    return set(select)
