"""RPL011: rng stream-flow analysis over ``SeedSequence.spawn`` children.

The determinism contract (docs/determinism.md) says every spawned child
sequence feeds **exactly one** component. The per-file rules catch seed
*arithmetic* (RPL004); this module catches stream *plumbing* mistakes
that arithmetic-free code can still make:

* ``spawn(k)`` unpacked into a different number of names — the silent
  off-by-one that reorders every downstream stream;
* a constant subscript past the declared spawn count;
* the same spawned child subscripted twice — two "independent"
  components sharing one stream (the spare-stream collision);
* one spawned child handed to two different consumers — identical coin
  flips on paths the paper requires to be independent.

Phase 1 (:func:`extract_stream_facts`) runs inside the per-file summary
pass and records plain data; phase 2 (:func:`check_streams`) walks the
aggregated model and emits findings. Violations are yielded as dicts —
the engine owns the :class:`~repro.lint.engine.Violation` type and the
suppression filter.
"""

from __future__ import annotations

import ast
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

_SPAWN_SOURCES = ("spawn",)


class _ScopeCollector(ast.NodeVisitor):
    """Stream facts for one function body (nested defs get their own)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.spawns: List[Dict[str, Any]] = []
        #: child-stream variable -> line bound
        self.children: Dict[str, int] = {}
        self.subscripts: List[Dict[str, Any]] = []
        self.handoffs: List[Dict[str, Any]] = []
        self._spawn_vars: Dict[str, Optional[int]] = {}

    # nested scopes are collected separately — don't descend
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Assign(self, node: ast.Assign) -> None:
        spawn_count = _spawn_count(node.value)
        if spawn_count is not _NOT_SPAWN and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                self.spawns.append(
                    {
                        "var": target.id,
                        "count": spawn_count,
                        "unpack": None,
                        "line": node.lineno,
                    }
                )
                self._spawn_vars[target.id] = spawn_count
            elif isinstance(target, (ast.Tuple, ast.List)):
                names = [
                    e.id for e in target.elts if isinstance(e, ast.Name)
                ]
                self.spawns.append(
                    {
                        "var": None,
                        "count": spawn_count,
                        "unpack": len(target.elts),
                        "line": node.lineno,
                    }
                )
                for name in names:
                    self.children[name] = node.lineno
        elif len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            # `child = children[i]` binds a child-stream variable
            sub = _const_subscript(node.value)
            if sub is not None and sub[0] in self._spawn_vars:
                self.children[node.targets[0].id] = node.lineno
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        sub = _const_subscript(node)
        if sub is not None and sub[0] in self._spawn_vars:
            self.subscripts.append(
                {"var": sub[0], "index": sub[1], "line": node.lineno}
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        callee = _call_name(node)
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Name) and arg.id in self.children:
                self.handoffs.append(
                    {
                        "var": arg.id,
                        "line": node.lineno,
                        "callee": callee or "<call>",
                    }
                )
        self.generic_visit(node)


_NOT_SPAWN = object()


def _spawn_count(node: ast.AST) -> Any:
    """``<expr>.spawn(K)`` → K (int or None); anything else → _NOT_SPAWN."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _SPAWN_SOURCES
    ):
        return _NOT_SPAWN
    if len(node.args) == 1 and isinstance(node.args[0], ast.Constant):
        value = node.args[0].value
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    return None


def _const_subscript(node: ast.AST) -> Optional[Tuple[str, int]]:
    if (
        isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, int)
        and not isinstance(node.slice.value, bool)
    ):
        return node.value.id, node.slice.value
    return None


def _call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    parts: List[str] = []
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
        return ".".join(reversed(parts))
    return None


def extract_stream_facts(tree: ast.AST, visitor: Any) -> List[Dict[str, Any]]:
    """Per-scope stream facts for one module (phase-1, serializable)."""
    scopes: List[Tuple[str, ast.AST]] = [("<module>", tree)]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            scopes.append((node.name, node))
    out: List[Dict[str, Any]] = []
    for name, scope in scopes:
        collector = _ScopeCollector(name)
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for stmt in scope.body:
                collector.visit(stmt)
        else:
            for stmt in scope.body:  # type: ignore[attr-defined]
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    collector.visit(stmt)
        if (
            collector.spawns
            or collector.subscripts
            or collector.handoffs
        ):
            out.append(
                {
                    "scope": name,
                    "spawns": collector.spawns,
                    "subscripts": collector.subscripts,
                    "handoffs": collector.handoffs,
                }
            )
    return out


def check_streams(model: Any) -> Iterator[Dict[str, Any]]:
    """Phase-2 RPL011 checker over every file's stream facts."""
    for summary in model.all_files():
        path = summary["path"]
        for scope in summary.get("stream", []):
            yield from _check_scope(path, scope)


def _check_scope(
    path: str, scope: Dict[str, Any]
) -> Iterator[Dict[str, Any]]:
    counts: Dict[str, Optional[int]] = {}
    for spawn in scope["spawns"]:
        unpack = spawn["unpack"]
        count = spawn["count"]
        if spawn["var"] is not None:
            counts[spawn["var"]] = count
        if (
            unpack is not None
            and count is not None
            and unpack != count
        ):
            yield {
                "path": path,
                "line": spawn["line"],
                "col": 0,
                "code": "RPL011",
                "message": (
                    f"spawn({count}) unpacked into {unpack} names — "
                    "stream order silently shifts for every consumer"
                ),
            }
    seen_index: Dict[Tuple[str, int], int] = {}
    for sub in scope["subscripts"]:
        key = (sub["var"], sub["index"])
        count = counts.get(sub["var"])
        if count is not None and sub["index"] >= count:
            yield {
                "path": path,
                "line": sub["line"],
                "col": 0,
                "code": "RPL011",
                "message": (
                    f"stream index [{sub['index']}] is out of range for "
                    f"`{sub['var']} = …spawn({count})`"
                ),
            }
            continue
        first = seen_index.get(key)
        if first is not None:
            yield {
                "path": path,
                "line": sub["line"],
                "col": 0,
                "code": "RPL011",
                "message": (
                    f"spare-stream collision: `{sub['var']}[{sub['index']}]` "
                    f"already consumed on line {first} — two components "
                    "now share one rng stream"
                ),
            }
        else:
            seen_index[key] = sub["line"]
    by_child: Dict[str, List[Dict[str, Any]]] = {}
    for handoff in scope["handoffs"]:
        by_child.setdefault(handoff["var"], []).append(handoff)
    for child, handoffs in by_child.items():
        lines = sorted({h["line"] for h in handoffs})
        if len(lines) > 1:
            first_line = lines[0]
            for handoff in handoffs:
                if handoff["line"] != first_line:
                    yield {
                        "path": path,
                        "line": handoff["line"],
                        "col": 0,
                        "code": "RPL011",
                        "message": (
                            f"spawned stream `{child}` already fed a "
                            f"consumer on line {first_line}; handing it to "
                            f"`{handoff['callee']}` too correlates both "
                            "components' coin flips"
                        ),
                    }
