"""RPL012 and RPL013: the knob-trio and counter-registry contracts.

RPL012 — every run-configuration knob reaches users through three
mechanically-linked paths plus documentation: a ``REPRO_*`` environment
variable (declared as a ``*_ENV_VAR`` constant), a CLI flag whose help
text names the env var, and a ``default_*``/``resolve_*`` function that
reads it. A knob missing a leg is the drift this rule exists to catch —
an env var the CLI never mentions, a flag with no resolver behind it, or
a variable no doc tells the user about. Bare env vars without the
``*_ENV_VAR`` declaration (e.g. a worker handshake token read straight
from ``os.environ``) only owe the documentation leg.

RPL013 — every metric name must round-trip between three places: the
``obs.counter("…")``/``obs.timer("…")`` call sites in ``src/``, the
declared registry in :mod:`repro.obs.names`, and the catalogue table in
``docs/observability.md``. Dynamic (f-string) call sites are legal only
under a prefix listed in ``DYNAMIC_COUNTER_PREFIXES``. Any one-way trip
— an undeclared call site (the classic ``exec.worker_losst`` typo), a
stale declaration, an undocumented metric, a phantom doc row — is a
finding.

Both checkers yield plain violation dicts; the engine owns
:class:`~repro.lint.engine.Violation` construction and suppression.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

#: docs file that must catalogue every declared metric
OBSERVABILITY_DOC = "docs/observability.md"

_RESOLVER_PREFIXES = ("default_", "resolve_", "set_default_")


def _env_const_knobs(
    model: Any,
) -> Dict[str, Tuple[str, str, int]]:
    """``REPRO_*`` vars declared via ``*_ENV_VAR`` consts in src.

    Returns env var name -> (path, const name, declaration line).
    """
    out: Dict[str, Tuple[str, str, int]] = {}
    for summary in model.src_files():
        for const, value in summary["env_consts"].items():
            if not const.endswith("_ENV_VAR"):
                continue
            line = min(
                (
                    occ["line"]
                    for occ in summary["env_vars"]
                    if occ["name"] == value
                ),
                default=1,
            )
            out.setdefault(value, (summary["path"], const, line))
    return out


def _bare_env_vars(model: Any) -> Dict[str, Tuple[str, int]]:
    """``REPRO_*`` vars read in src without a ``*_ENV_VAR`` declaration."""
    out: Dict[str, Tuple[str, int]] = {}
    for summary in model.src_files():
        for occ in summary["env_vars"]:
            name = occ["name"]
            current = out.get(name)
            if current is None:
                out[name] = (summary["path"], occ["line"])
            elif current[0] == summary["path"] and occ["line"] < current[1]:
                out[name] = (summary["path"], occ["line"])
    return out


def check_knobs(model: Any) -> Iterator[Dict[str, Any]]:
    """RPL012 over the whole project."""
    knobs = _env_const_knobs(model)
    flags_help: List[str] = []
    resolver_envs: Set[str] = set()
    for summary in model.src_files():
        for record in summary["argparse_flags"]:
            flags_help.append(record["help"])
        for occ in summary["env_vars"]:
            if occ["function"].startswith(_RESOLVER_PREFIXES):
                resolver_envs.add(occ["name"])
    all_help = "\n".join(flags_help)

    for env, (path, const, line) in sorted(knobs.items()):
        missing: List[str] = []
        if env not in all_help:
            missing.append("a CLI flag whose help names it")
        if env not in resolver_envs:
            missing.append("a default_*/resolve_* reader")
        if not model.docs_mentioning_env(env):
            missing.append("a docs/ mention")
        if missing:
            yield {
                "path": path,
                "line": line,
                "col": 0,
                "code": "RPL012",
                "message": (
                    f"knob `{env}` (declared as {const}) is missing "
                    + " and ".join(missing)
                ),
            }

    for env, (path, line) in sorted(_bare_env_vars(model).items()):
        if env in knobs:
            continue
        if not model.docs_mentioning_env(env):
            yield {
                "path": path,
                "line": line,
                "col": 0,
                "code": "RPL012",
                "message": (
                    f"environment variable `{env}` is read here but "
                    "documented nowhere under docs/"
                ),
            }


def _declared_registry(
    model: Any,
) -> Optional[Tuple[str, Dict[str, int], Dict[str, int], List[str]]]:
    """Locate the declared-name module (the one defining the registry).

    Returns (path, counters{name: line}, timers{name: line}, prefixes).
    """
    for summary in model.src_files():
        consts = summary["string_consts"]
        if "DECLARED_COUNTERS" not in consts:
            continue
        counters = {name: line for name, line in consts["DECLARED_COUNTERS"]}
        timers = {
            name: line
            for name, line in consts.get("DECLARED_TIMERS", [])
        }
        prefixes = [
            name
            for name, _ in consts.get("DYNAMIC_COUNTER_PREFIXES", [])
        ]
        return summary["path"], counters, timers, prefixes
    return None


def check_counters(model: Any) -> Iterator[Dict[str, Any]]:
    """RPL013 over call sites, the declared registry, and the doc table."""
    registry = _declared_registry(model)
    if registry is None:
        return
    reg_path, counters, timers, prefixes = registry

    used_literals: Set[str] = set()
    used_prefixes: Set[str] = set()
    for summary in model.src_files():
        if summary["path"] == reg_path:
            continue
        for site in summary["counter_sites"]:
            declared = counters if site["kind"] == "counter" else timers
            if site["dynamic"]:
                prefix = site["prefix"]
                if prefix is None or not any(
                    prefix.startswith(p) for p in prefixes
                ):
                    yield {
                        "path": summary["path"],
                        "line": site["line"],
                        "col": 0,
                        "code": "RPL013",
                        "message": (
                            "dynamic counter name "
                            f"(prefix {prefix!r}) is not under any "
                            "DYNAMIC_COUNTER_PREFIXES entry"
                        ),
                    }
                else:
                    used_prefixes.add(prefix)
                continue
            name = site["name"]
            if name is None:
                continue
            used_literals.add(name)
            if name not in declared:
                yield {
                    "path": summary["path"],
                    "line": site["line"],
                    "col": 0,
                    "code": "RPL013",
                    "message": (
                        f"{site['kind']} name `{name}` is not declared "
                        "in the obs name registry — a typo here silently "
                        "creates a parallel metric"
                    ),
                }

    doc = model.docs.get(OBSERVABILITY_DOC)
    doc_metrics: Dict[str, int] = doc["metrics"] if doc else {}
    phases = {name.split(".", 1)[0] for name in counters} | {
        name.split(".", 1)[0] for name in timers
    }

    for name, line in sorted(counters.items()):
        reachable = name in used_literals or any(
            name.startswith(p) for p in prefixes if p in used_prefixes
        )
        if not reachable:
            yield {
                "path": reg_path,
                "line": line,
                "col": 0,
                "code": "RPL013",
                "message": (
                    f"declared counter `{name}` is incremented nowhere "
                    "— stale declaration"
                ),
            }
        if doc is not None and name not in doc_metrics:
            yield {
                "path": reg_path,
                "line": line,
                "col": 0,
                "code": "RPL013",
                "message": (
                    f"declared counter `{name}` is missing from the "
                    f"{OBSERVABILITY_DOC} catalogue"
                ),
            }
    for name, line in sorted(timers.items()):
        if name not in used_literals:
            yield {
                "path": reg_path,
                "line": line,
                "col": 0,
                "code": "RPL013",
                "message": (
                    f"declared timer `{name}` is opened nowhere — "
                    "stale declaration"
                ),
            }
        if doc is not None and name not in doc_metrics:
            yield {
                "path": reg_path,
                "line": line,
                "col": 0,
                "code": "RPL013",
                "message": (
                    f"declared timer `{name}` is missing from the "
                    f"{OBSERVABILITY_DOC} catalogue"
                ),
            }

    if doc is not None:
        declared_all = set(counters) | set(timers)
        for token, line in sorted(doc_metrics.items()):
            if token.split(".", 1)[0] not in phases:
                continue  # not a metric name (e.g. a module path)
            if token not in declared_all:
                yield {
                    "path": OBSERVABILITY_DOC,
                    "line": line,
                    "col": 0,
                    "code": "RPL013",
                    "message": (
                        f"documented metric `{token}` is not declared "
                        "in the obs name registry (typo or removed "
                        "counter?)"
                    ),
                }

    # reporting prefixes must slice declared phases, not invent new ones
    for summary in model.src_files():
        for name, items in summary["string_consts"].items():
            if name != "REPORTING_COUNTER_PREFIXES":
                continue
            for prefix, line in items:
                if prefix.rstrip(".") not in phases:
                    yield {
                        "path": summary["path"],
                        "line": line,
                        "col": 0,
                        "code": "RPL013",
                        "message": (
                            f"reporting prefix `{prefix}` matches no "
                            "declared metric phase"
                        ),
                    }
