"""reprolint — the repo's determinism-contract static analysis pass.

The load-bearing guarantee of this reproduction is that scalar, batched
(:class:`~repro.sim.batch_engine.BatchedEngine`) and pooled
(``run_trials(n_jobs=)``) executions are **bit-identical per seed**. The
equivalence suites enforce that after the fact; ``reprolint`` enforces
the coding discipline that makes it true *at review time*:

* every random draw comes from an explicitly seeded
  :class:`numpy.random.Generator` stream,
* independent streams are derived by :meth:`SeedSequence.spawn`, never
  by seed arithmetic (``seed + 1`` builds *correlated* PCG64 states),
* no wall-clock, OS-entropy, or hash-order dependence in the engine
  packages,
* batched (lane-indexed) protocol classes draw from per-lane streams in
  scalar order, never from a shared scalar ``self.rng``.

Run it as ``python -m repro.lint [paths]`` (see ``--help``), as the
pytest check in ``tests/analysis/``, or via the ``lint`` CI job. Every
rule, its rationale, and the ``# repro: noqa=RPLxxx(reason)`` suppression
syntax are documented in ``docs/static_analysis.md``.
"""

from repro.lint.baseline import (
    Baseline,
    BaselineDrift,
    compare_to_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.engine import (
    DEFAULT_CACHE,
    DEFAULT_PATHS,
    LintError,
    Violation,
    lint_paths,
    lint_project,
    lint_source,
)
from repro.lint.rules import PROJECT_RULES, RULES, Rule

__all__ = [
    "Baseline",
    "BaselineDrift",
    "DEFAULT_CACHE",
    "DEFAULT_PATHS",
    "LintError",
    "PROJECT_RULES",
    "RULES",
    "Rule",
    "Violation",
    "compare_to_baseline",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "write_baseline",
]
