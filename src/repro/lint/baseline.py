"""Baseline bookkeeping: explicit, counted, drift-checked suppressions.

The baseline file (``reprolint-baseline.json`` at the repo root) is the
inventory of *pre-existing* violations that predate the linter — mostly
test helpers whose golden pins depend on historical rng streams. The
contract is symmetric:

* a violation **not** in the baseline fails the run (new debt), and
* a baseline entry with no matching violation **also** fails the run
  (the debt was paid but the ledger not updated — regenerate with
  ``--write-baseline`` so the shrink is explicit in the diff).

Entries are keyed by :attr:`Violation.fingerprint` (file + rule +
flagged-line content), so renumbering lines does not churn the file but
touching a flagged line does.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Collection, Dict, List, Optional, Sequence

from repro.lint.engine import LintError, Violation

_VERSION = 1


@dataclass
class Baseline:
    """Parsed baseline: fingerprint -> expected occurrence count."""

    counts: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())


@dataclass
class BaselineDrift:
    """How the current tree differs from the committed baseline."""

    new: List[Violation] = field(default_factory=list)
    stale: List[str] = field(default_factory=list)
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


def load_baseline(path: str) -> Baseline:
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise LintError(f"cannot read baseline {path}: {exc}") from None
    except json.JSONDecodeError as exc:
        raise LintError(f"baseline {path} is not valid JSON: {exc}") from None
    if data.get("version") != _VERSION:
        raise LintError(
            f"baseline {path} has version {data.get('version')!r}; "
            f"this linter reads version {_VERSION}"
        )
    counts: Dict[str, int] = {}
    for entry in data.get("entries", []):
        counts[entry["fingerprint"]] = (
            counts.get(entry["fingerprint"], 0) + int(entry.get("count", 1))
        )
    return Baseline(counts=counts)


def write_baseline(path: str, violations: Sequence[Violation]) -> int:
    """Write the current violations as the new baseline; returns count."""
    grouped: Dict[str, Dict[str, object]] = {}
    for violation in sorted(violations):
        entry = grouped.setdefault(
            violation.fingerprint,
            {
                "fingerprint": violation.fingerprint,
                "path": violation.path,
                "code": violation.code,
                "line_text": violation.line_text.strip(),
                "count": 0,
            },
        )
        entry["count"] = int(entry["count"]) + 1  # type: ignore[call-overload]
    payload = {
        "version": _VERSION,
        "comment": (
            "Pre-existing reprolint violations, explicitly inventoried. "
            "Shrink it by fixing a violation AND regenerating with "
            "`python -m repro.lint --write-baseline`; never grow it by "
            "hand. See docs/static_analysis.md."
        ),
        "entries": sorted(
            grouped.values(), key=lambda e: str(e["fingerprint"])
        ),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return sum(int(e["count"]) for e in grouped.values())


def compare_to_baseline(
    violations: Sequence[Violation],
    baseline: Baseline,
    restrict_paths: Optional[Collection[str]] = None,
) -> BaselineDrift:
    """Split current violations into baselined / new, and find stale debt.

    ``restrict_paths`` limits the comparison to baseline entries whose
    fingerprint path is in the collection — the ``--diff`` mode, where
    only changed files were linted, must not report entries for
    *unlinted* files as stale.
    """
    counts = baseline.counts
    if restrict_paths is not None:
        allowed = set(restrict_paths)
        counts = {
            fingerprint: count
            for fingerprint, count in counts.items()
            if fingerprint.split("::", 1)[0] in allowed
        }
    budget = Counter(counts)
    drift = BaselineDrift()
    for violation in sorted(violations):
        if budget.get(violation.fingerprint, 0) > 0:
            budget[violation.fingerprint] -= 1
            drift.suppressed += 1
        else:
            drift.new.append(violation)
    drift.stale = sorted(
        fingerprint
        for fingerprint, remaining in budget.items()
        if remaining > 0
        for _ in range(remaining)
    )
    return drift
