"""The silent adversary: dishonest players never post.

The weakest Byzantine behaviour — useful as a control in the E11 gauntlet
(DISTILL's cost with silent dishonest players isolates the pure search
cost from the poisoning cost) and for the lower-bound experiments where
only honest work matters.
"""

from __future__ import annotations

from typing import List

from repro.adversaries.base import Adversary
from repro.billboard.views import BillboardView
from repro.sim.actions import VoteAction


class SilentAdversary(Adversary):
    """Does nothing, ever."""

    name = "silent"

    def act(self, round_no: int, view: BillboardView) -> List[VoteAction]:
        return []
