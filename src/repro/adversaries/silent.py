"""The silent adversary: dishonest players never post.

The weakest Byzantine behaviour — useful as a control in the E11 gauntlet
(DISTILL's cost with silent dishonest players isolates the pure search
cost from the poisoning cost) and for the lower-bound experiments where
only honest work matters.
"""

from __future__ import annotations

from typing import List

from repro.adversaries.base import Adversary
from repro.billboard.views import BillboardView
from repro.sim.actions import VoteAction


class SilentAdversary(Adversary):
    """Does nothing, ever."""

    name = "silent"

    def make_batched(self, n_lanes: int) -> "BatchedSilentAdversary":
        """Trial-lane counterpart (see :mod:`repro.adversaries.batched`)."""
        from repro.adversaries.batched import BatchedSilentAdversary

        return BatchedSilentAdversary(n_lanes)

    def act(self, round_no: int, view: BillboardView) -> List[VoteAction]:
        return []
