"""Protocol-following adversaries with spoofed observations.

Theorem 2's dishonest players "follow the protocol, except that the object
values they report are the values dictated by the adversarial strategy".
:class:`SpoofedProtocolAdversary` realizes exactly that: it runs a genuine
honest strategy for its cohort of dishonest players, but feeds the cohort
values from adversary-chosen per-player tables instead of the truth. The
resulting *posts* — probe votes at protocol-plausible times — are
indistinguishable from honest behaviour, which is the symmetry the lower
bound exploits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.adversaries.base import Adversary
from repro.billboard.views import BillboardView
from repro.sim.actions import VoteAction
from repro.strategies.base import Strategy, StrategyContext
from repro.world.instance import Instance


class SpoofedProtocolAdversary(Adversary):
    """Runs an honest strategy for dishonest players over spoofed values.

    Parameters
    ----------
    strategy_factory:
        Builds the protocol the cohort mimics (usually the same strategy
        the honest players run).
    spoof_tables:
        Mapping ``player -> array(m,)`` of values that player "observes";
        dishonest players missing from the map observe all-zeros (they
        never find anything and never vote).
    ctx_factory:
        Optional override for the context the mimicking cohort assumes;
        defaults to the same public parameters the honest cohort uses.
    """

    name = "spoofed-protocol"

    def __init__(
        self,
        strategy_factory: Callable[[], Strategy],
        spoof_tables: Dict[int, np.ndarray],
        ctx_factory: Optional[Callable[[Instance], StrategyContext]] = None,
    ) -> None:
        self.strategy_factory = strategy_factory
        self.spoof_tables = {
            int(p): np.asarray(t, dtype=np.float64)
            for p, t in spoof_tables.items()
        }
        self.ctx_factory = ctx_factory

    # ------------------------------------------------------------------
    def reset(self, instance: Instance, rng: np.random.Generator) -> None:
        super().reset(instance, rng)
        if self.ctx_factory is not None:
            ctx = self.ctx_factory(instance)
        else:
            ctx = StrategyContext(
                n=instance.n,
                m=instance.m,
                alpha=instance.alpha,
                beta=instance.beta,
                good_threshold=instance.space.good_threshold,
            )
        self.inner = self.strategy_factory()
        self.inner.reset(ctx, rng)
        self._active = self.dishonest_ids.copy()
        self._zeros = np.zeros(instance.m, dtype=np.float64)

    def _observe(self, players: np.ndarray, objects: np.ndarray) -> np.ndarray:
        values = np.empty(players.size, dtype=np.float64)
        for i, (player, obj) in enumerate(zip(players, objects)):
            table = self.spoof_tables.get(int(player), self._zeros)
            values[i] = table[int(obj)]
        return values

    # ------------------------------------------------------------------
    def act(self, round_no: int, view: BillboardView) -> List[VoteAction]:
        if self._active.size == 0:
            return []
        # The mimicking cohort reads the board exactly as honest players
        # do: at the start-of-round horizon.
        honest_view = view.with_horizon(round_no)
        choices = np.asarray(
            self.inner.choose_probes(round_no, self._active, honest_view),
            dtype=np.int64,
        )
        probing = choices >= 0
        probers = self._active[probing]
        targets = choices[probing]
        if probers.size == 0:
            return []
        values = self._observe(probers, targets)
        vote_mask, halt_mask = self.inner.handle_results(
            round_no, probers, targets, values
        )
        vote_mask = np.asarray(vote_mask, dtype=bool)
        halt_mask = np.asarray(halt_mask, dtype=bool)
        actions = [
            VoteAction(
                player=int(probers[i]),
                object_id=int(targets[i]),
                claimed_value=float(values[i]),
            )
            for i in np.flatnonzero(vote_mask)
        ]
        if halt_mask.any():
            halted = set(int(p) for p in probers[halt_mask])
            self._active = np.array(
                [p for p in self._active if int(p) not in halted],
                dtype=np.int64,
            )
        return actions
