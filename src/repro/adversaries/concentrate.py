"""The concentrate adversary: many votes on few bad objects.

The counterpart of :class:`~repro.adversaries.flood.FloodAdversary`:
instead of spreading one vote per bad object (maximizing candidate-pool
*breadth*), it stacks ``votes_each`` votes on each of ``n_targets`` bad
objects (maximizing candidate *depth* — pushing a few bad objects past
high vote thresholds).

This is the attack that saturates the Section 1.2 three-phase analysis:
with a ``√n`` dishonest budget and a ``√n/2`` phase-3 threshold, the
adversary can afford at most 2 bad objects in ``C_3`` — hence the paper's
"``C_3`` contains at most 3 objects".
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.adversaries.base import Adversary
from repro.billboard.views import BillboardView
from repro.errors import ConfigurationError
from repro.sim.actions import VoteAction
from repro.world.instance import Instance


class ConcentrateAdversary(Adversary):
    """Stack votes on a few bad objects at a chosen round.

    Parameters
    ----------
    n_targets:
        Number of bad objects to boost; ``None`` = as many as the budget
        affords at ``votes_each`` votes apiece.
    votes_each:
        Votes per boosted object; ``None`` = spend the whole budget evenly
        across ``n_targets`` objects.
    at_round:
        Round at which the batch is cast.
    """

    name = "concentrate"

    def __init__(
        self,
        n_targets: int = 2,
        votes_each: int = None,
        at_round: int = 0,
    ) -> None:
        if n_targets < 1:
            raise ConfigurationError(f"n_targets must be >= 1, got {n_targets}")
        if votes_each is not None and votes_each < 1:
            raise ConfigurationError(
                f"votes_each must be >= 1, got {votes_each}"
            )
        if at_round < 0:
            raise ConfigurationError(f"at_round must be >= 0, got {at_round}")
        self.n_targets = n_targets
        self.votes_each = votes_each
        self.at_round = at_round

    def reset(self, instance: Instance, rng: np.random.Generator) -> None:
        super().reset(instance, rng)
        self._fired = False

    def act(self, round_no: int, view: BillboardView) -> List[VoteAction]:
        if self._fired or round_no < self.at_round:
            return []
        self._fired = True
        bad = self.bad_object_ids()
        budget = int(self.dishonest_ids.size)
        if bad.size == 0 or budget == 0:
            return []
        n_targets = min(self.n_targets, bad.size)
        votes_each = self.votes_each
        if votes_each is None:
            votes_each = max(1, budget // n_targets)
        targets = self.rng.choice(bad, size=n_targets, replace=False)
        actions: List[VoteAction] = []
        voters = iter(self.dishonest_ids)
        for obj in targets:
            for _ in range(votes_each):
                try:
                    player = next(voters)
                except StopIteration:
                    return actions
                actions.append(
                    VoteAction(player=int(player), object_id=int(obj))
                )
        return actions
