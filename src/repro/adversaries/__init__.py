"""Byzantine adversary strategies.

Section 2.3: dishonest players may behave arbitrarily; an *adaptive*
adversary chooses their actions after observing all realized coin flips so
far. Our engine shows the adversary the complete billboard — including the
honest posts of the current round — before it casts dishonest votes, which
is the strongest scheduling consistent with the model.

The registry (:mod:`repro.adversaries.registry`) names all built-in
adversaries for the E11 gauntlet.
"""

from repro.adversaries.base import Adversary
from repro.adversaries.batched import (
    BatchedAdversary,
    BatchedRandomVotesAdversary,
    BatchedSilentAdversary,
    BatchedSplitVoteAdversary,
    PerLaneAdversary,
    VectorSlotSplitVoteAdversary,
    batched_adversary_for,
)
from repro.adversaries.silent import SilentAdversary
from repro.adversaries.concentrate import ConcentrateAdversary
from repro.adversaries.flood import FloodAdversary
from repro.adversaries.random_votes import RandomVotesAdversary
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.adversaries.mimic import MimicAdversary
from repro.adversaries.oblivious import ObliviousSplitVoteAdversary
from repro.adversaries.spoofed import SpoofedProtocolAdversary
from repro.adversaries.registry import (
    ADVERSARY_REGISTRY,
    available_adversaries,
    make_adversary,
)

__all__ = [
    "ADVERSARY_REGISTRY",
    "Adversary",
    "BatchedAdversary",
    "BatchedRandomVotesAdversary",
    "BatchedSilentAdversary",
    "BatchedSplitVoteAdversary",
    "ConcentrateAdversary",
    "PerLaneAdversary",
    "VectorSlotSplitVoteAdversary",
    "batched_adversary_for",
    "FloodAdversary",
    "MimicAdversary",
    "ObliviousSplitVoteAdversary",
    "RandomVotesAdversary",
    "SilentAdversary",
    "SplitVoteAdversary",
    "SpoofedProtocolAdversary",
    "available_adversaries",
    "make_adversary",
]
