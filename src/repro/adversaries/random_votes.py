"""The random adversary: bad votes at random times.

Each dishonest player casts one vote for a uniformly random bad object at
a round drawn uniformly from a horizon. A weak, oblivious strategy — its
role in the E11 gauntlet is to show that *timing* (the split-vote
adversary) matters more than volume.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.adversaries.base import Adversary
from repro.billboard.views import BillboardView
from repro.sim.actions import VoteAction
from repro.world.instance import Instance


class RandomVotesAdversary(Adversary):
    """One random bad vote per dishonest player at a random round.

    Parameters
    ----------
    horizon:
        Votes are scheduled uniformly over rounds ``[0, horizon)``.
    """

    name = "random-votes"

    def __init__(self, horizon: int = 64) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        self.horizon = horizon

    def make_batched(self, n_lanes: int) -> "BatchedRandomVotesAdversary":
        """Trial-lane counterpart (see :mod:`repro.adversaries.batched`)."""
        from repro.adversaries.batched import BatchedRandomVotesAdversary

        return BatchedRandomVotesAdversary(n_lanes, horizon=self.horizon)

    def reset(self, instance: Instance, rng: np.random.Generator) -> None:
        super().reset(instance, rng)
        self._schedule = {}
        bad = self.bad_object_ids()
        if bad.size == 0:
            return
        when = rng.integers(self.horizon, size=self.dishonest_ids.size)
        what = bad[rng.integers(bad.size, size=self.dishonest_ids.size)]
        for player, round_no, obj in zip(self.dishonest_ids, when, what):
            self._schedule.setdefault(int(round_no), []).append(
                VoteAction(player=int(player), object_id=int(obj))
            )

    def act(self, round_no: int, view: BillboardView) -> List[VoteAction]:
        return self._schedule.pop(round_no, [])
