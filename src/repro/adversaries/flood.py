"""The flood adversary: spend the whole vote budget immediately.

Every dishonest player votes for a *distinct* bad object in the first
round. This maximizes the size of Step 1.2's candidate pool ``S`` (up to
``(1-α)n`` bogus entries), diluting the honest probes of Step 1.3 — the
attack the ``k2/4`` threshold of Step 1.4 is designed to absorb.

When there are more dishonest players than bad objects the surplus votes
concentrate round-robin, pushing some bad objects toward the ``C0``
threshold as well.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.adversaries.base import Adversary
from repro.billboard.views import BillboardView
from repro.sim.actions import VoteAction
from repro.world.instance import Instance


class FloodAdversary(Adversary):
    """All dishonest votes at round 0, spread over distinct bad objects."""

    name = "flood"

    def reset(self, instance: Instance, rng: np.random.Generator) -> None:
        super().reset(instance, rng)
        self._fired = False

    def act(self, round_no: int, view: BillboardView) -> List[VoteAction]:
        if self._fired:
            return []
        self._fired = True
        bad = self.bad_object_ids()
        if bad.size == 0:
            return []
        targets = self.rng.permutation(bad)
        return [
            VoteAction(
                player=int(player),
                object_id=int(targets[i % targets.size]),
            )
            for i, player in enumerate(self.dishonest_ids)
        ]
