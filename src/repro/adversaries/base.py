"""Adversary interface.

An adversary controls the dishonest players. Per round it is shown the full
billboard (adaptive adversary: everything realized so far, including the
current round's honest posts) and returns the votes it wants its players to
cast. The engine enforces that it only posts under dishonest identities;
the billboard's reader-side ledger enforces the one-vote (or ``f``-vote)
rule, so an adversary gains nothing by spamming.

Unlike strategies, an adversary *does* get the ground-truth
:class:`~repro.world.instance.Instance` — a Byzantine adversary knows
everything.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.billboard.views import BillboardView
from repro.sim.actions import VoteAction
from repro.world.instance import Instance


class Adversary:
    """Base class for Byzantine adversaries."""

    #: registry name; subclasses override
    name: str = "adversary"

    def reset(self, instance: Instance, rng: np.random.Generator) -> None:
        """Prepare for a fresh run against ``instance``."""
        self.instance = instance
        self.rng = rng
        self.dishonest_ids = instance.dishonest_ids.copy()

    def act(self, round_no: int, view: BillboardView) -> List[VoteAction]:
        """Votes to cast at the end of round ``round_no``.

        ``view`` has no horizon: the adversary sees the entire board,
        including this round's honest posts.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Helpers shared by concrete adversaries
    # ------------------------------------------------------------------
    def bad_object_ids(self) -> np.ndarray:
        """Ground-truth bad objects (what a malicious vote points at)."""
        return np.flatnonzero(~self.instance.space.good_mask)
