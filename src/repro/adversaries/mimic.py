"""The mimic adversary: behave honestly, "find" bad objects.

A special case of :class:`~repro.adversaries.spoofed.SpoofedProtocolAdversary`
where every dishonest player is lured to the same small set of bad
objects: their spoofed world marks ``n_lures`` bad objects as good, so
they run the honest protocol, quickly "find" a lure, vote for it at a
perfectly protocol-plausible time, and halt. The lures accumulate enough
coordinated votes to enter ``C0`` and contend through early iterations.

Statistically indistinguishable from honest behaviour post-by-post — only
the one-vote budget and the distillation thresholds defeat it.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.adversaries.spoofed import SpoofedProtocolAdversary
from repro.core.distill import DistillStrategy
from repro.core.parameters import DistillParameters
from repro.strategies.base import Strategy
from repro.world.instance import Instance
from repro.world.valuemodel import constant_spoof_table


class MimicAdversary(SpoofedProtocolAdversary):
    """Protocol mimicry with shared lure objects.

    Parameters
    ----------
    n_lures:
        How many bad objects are spoofed good; ``None`` picks
        ``max(1, n_dishonest // 8)`` so each lure can collect several
        coordinated votes.
    strategy_factory:
        Protocol to mimic; defaults to DISTILL with default constants.
    """

    name = "mimic"

    def __init__(
        self,
        n_lures: Optional[int] = None,
        strategy_factory: Optional[Callable[[], Strategy]] = None,
    ) -> None:
        factory = strategy_factory or (
            lambda: DistillStrategy(DistillParameters())
        )
        super().__init__(strategy_factory=factory, spoof_tables={})
        self.n_lures = n_lures

    def reset(self, instance: Instance, rng: np.random.Generator) -> None:
        bad = np.flatnonzero(~instance.space.good_mask)
        threshold = instance.space.good_threshold
        lure_value = 1.0 if threshold is None else max(1.0, threshold)
        if bad.size:
            n_lures = self.n_lures
            if n_lures is None:
                n_lures = max(1, instance.n_dishonest // 8)
            n_lures = min(n_lures, bad.size)
            lures = rng.choice(bad, size=n_lures, replace=False)
            table = constant_spoof_table(
                instance.space, lures, high=lure_value, low=0.0
            )
            self.spoof_tables = {
                int(p): table for p in instance.dishonest_ids
            }
        else:
            self.spoof_tables = {}
        super().reset(instance, rng)
