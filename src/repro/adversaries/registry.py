"""Name → adversary factories, for the E11 gauntlet and the CLI of the
examples.

Every entry is a zero-argument factory returning a fresh adversary with
that strategy's default knobs; experiments that need tuned knobs construct
the classes directly.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.adversaries.base import Adversary
from repro.adversaries.concentrate import ConcentrateAdversary
from repro.adversaries.flood import FloodAdversary
from repro.adversaries.mimic import MimicAdversary
from repro.adversaries.oblivious import ObliviousSplitVoteAdversary
from repro.adversaries.random_votes import RandomVotesAdversary
from repro.adversaries.silent import SilentAdversary
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.errors import ConfigurationError

AdversaryFactory = Callable[[], Adversary]

ADVERSARY_REGISTRY: Dict[str, AdversaryFactory] = {
    "silent": SilentAdversary,
    "flood": FloodAdversary,
    "concentrate": ConcentrateAdversary,
    "random-votes": RandomVotesAdversary,
    "split-vote": SplitVoteAdversary,
    "oblivious-split-vote": ObliviousSplitVoteAdversary,
    "mimic": MimicAdversary,
}


def available_adversaries() -> List[str]:
    """Registered adversary names, in gauntlet order."""
    return list(ADVERSARY_REGISTRY)


def make_adversary(name: str, **kwargs: object) -> Adversary:
    """Instantiate a registered adversary by name."""
    try:
        factory = ADVERSARY_REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown adversary {name!r}; known: {available_adversaries()}"
        ) from None
    return factory(**kwargs)
