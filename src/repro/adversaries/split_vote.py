"""The adaptive split-vote adversary — the worst case of Lemma 7.

Lemma 7 bounds DISTILL's while-loop by charging each surviving bad
candidate its threshold of fresh dishonest votes: keeping a bad object in
``C_{t+1}`` costs strictly more than ``n/(4·c_t)`` votes *cast in iteration
t*, and the total dishonest budget is ``(1-α)n``. The adversary that
realizes the bound spends exactly that way: it tops bad candidates up to
just past each stage's threshold, keeping as many alive as it can afford,
for as long as it can afford.

Because every phase boundary of DISTILL is a deterministic function of the
public billboard (see :class:`~repro.core.tracker.DistillPhaseTracker`),
the adversary simply runs the same tracker the honest players do and reads
the thresholds off it. This is a legitimate adaptive Byzantine adversary:
it uses only public information plus realized history.

Attack plan per window:

* **Step 1.3 window** — spend up to ``step13_fraction`` of the remaining
  budget pushing distinct bad objects to the ``ceil(k2/4)`` entry
  threshold of ``C0`` (Step 1.4 counts votes for *any* object, so no
  Step 1.1 grooming is needed).
* **Iteration window** — the survival threshold is ``floor(n/(4·c_t))+1``
  fresh votes; keep ``min(|bad ∩ C_t|, budget // need)`` bad candidates
  alive, preferring candidates that survived so far (sunk cost already
  paid by earlier votes).
* **Step 1.1 window** — spend up to ``step11_fraction`` of the remaining
  budget on *distinct* bad objects. A vote here cannot reach ``C0`` by
  itself (Step 1.4's threshold sees to that), but it inflates ``S`` and so
  dilutes the honest probes of Step 1.3 — each bogus entry lowers the
  chance an honest Step 1.3 probe lands on a genuinely good candidate.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro.adversaries.base import Adversary
from repro.billboard.views import BillboardView
from repro.core.parameters import DistillParameters
from repro.core.tracker import DistillPhase, DistillPhaseTracker
from repro.sim.actions import VoteAction
from repro.strategies.base import StrategyContext
from repro.world.instance import Instance


class SplitVoteAdversary(Adversary):
    """Threshold-topping adaptive adversary against DISTILL.

    Parameters
    ----------
    params:
        The DISTILL constants the honest players run with (the algorithm
        is public). Must match the honest strategy's for the mirror to be
        exact; a mismatched mirror degrades the attack, not the
        simulation.
    step11_fraction:
        Fraction of the remaining budget spent diluting ``S`` per ATTEMPT.
    step13_fraction:
        Fraction of the remaining budget allowed on ``C0`` pollution per
        ATTEMPT.
    votes_per_identity:
        The ``f`` of Section 4.1: how many effective votes each dishonest
        identity is worth under the run's ledger mode. Must match the
        engine's ``max_votes_per_player`` for the budget model to be
        exact.
    """

    name = "split-vote"

    def __init__(
        self,
        params: Optional[DistillParameters] = None,
        step11_fraction: float = 0.25,
        step13_fraction: float = 0.5,
        votes_per_identity: int = 1,
    ) -> None:
        if votes_per_identity < 1:
            raise ValueError(
                f"votes_per_identity must be >= 1, got {votes_per_identity}"
            )
        self.votes_per_identity = votes_per_identity
        for label, frac in (
            ("step11_fraction", step11_fraction),
            ("step13_fraction", step13_fraction),
        ):
            if not 0 <= frac <= 1:
                raise ValueError(f"{label} must be in [0, 1], got {frac}")
        self.params = params or DistillParameters()
        self.step11_fraction = step11_fraction
        self.step13_fraction = step13_fraction

    def make_batched(self, n_lanes: int) -> "BatchedSplitVoteAdversary":
        """Trial-lane counterpart (see :mod:`repro.adversaries.batched`)."""
        from repro.adversaries.batched import BatchedSplitVoteAdversary

        return BatchedSplitVoteAdversary(
            n_lanes,
            params=self.params,
            step11_fraction=self.step11_fraction,
            step13_fraction=self.step13_fraction,
            votes_per_identity=self.votes_per_identity,
        )

    # ------------------------------------------------------------------
    def reset(self, instance: Instance, rng: np.random.Generator) -> None:
        super().reset(instance, rng)
        ctx = StrategyContext(
            n=instance.n,
            m=instance.m,
            alpha=instance.alpha,
            beta=instance.beta,
            good_threshold=instance.space.good_threshold,
        )
        self.tracker = DistillPhaseTracker(ctx, self.params)
        # Each identity supplies `votes_per_identity` vote slots. Slots of
        # one identity must target *distinct* objects (the ledger dedups),
        # which the attack plans already guarantee by batching per object.
        shuffled = list(self.rng.permutation(self.dishonest_ids))
        self._unused = [
            p for i in range(self.votes_per_identity) for p in shuffled
        ]
        self._bad = self.bad_object_ids()
        self._bad_set = set(int(b) for b in self._bad)
        self._handled_window = (None, -1)

    @property
    def remaining_budget(self) -> int:
        return len(self._unused)

    # ------------------------------------------------------------------
    def act(self, round_no: int, view: BillboardView) -> List[VoteAction]:
        # len() (rather than truthiness) keeps this guard valid for the
        # vectorized subclass, whose slot pool is an ndarray.
        if len(self._unused) == 0 or self._bad.size == 0:
            return []
        # Mirror the honest phase computation exactly: advance on the
        # honest start-of-round horizon.
        self.tracker.advance(round_no, view.with_horizon(round_no))
        window = (self.tracker.phase, self.tracker.phase_start)
        if window == self._handled_window:
            return []
        self._handled_window = window

        if self.tracker.phase is DistillPhase.STEP11:
            return self._attack_step11()
        if self.tracker.phase is DistillPhase.STEP13:
            return self._attack_step13()
        return self._attack_iteration()

    # ------------------------------------------------------------------
    def _take_votes(self, count: int) -> List[int]:
        """Consume ``count`` vote slots with pairwise-distinct identities.

        Distinctness matters because the ledger deduplicates repeat votes
        by one player for one object; a batch aimed at a single object
        must come from ``count`` different identities or the threshold is
        not reached. Returns ``[]`` (consuming nothing) when the pool
        cannot supply a full distinct batch.
        """
        taken: List[int] = []
        rest: List[int] = []
        seen = set()
        for player in self._unused:
            p = int(player)
            if len(taken) < count and p not in seen:
                taken.append(p)
                seen.add(p)
            else:
                rest.append(p)
        if len(taken) < count:
            return []
        self._unused = rest
        return taken

    def _cast(self, targets: np.ndarray, need: int) -> List[VoteAction]:
        """``need`` votes for each target, while vote slots last."""
        actions: List[VoteAction] = []
        for obj in targets:
            voters = self._take_votes(need)
            if not voters:
                break
            actions.extend(
                VoteAction(player=p, object_id=int(obj)) for p in voters
            )
        return actions

    def _attack_step11(self) -> List[VoteAction]:
        budget = math.floor(self.step11_fraction * len(self._unused))
        n_targets = min(self._bad.size, budget)
        if n_targets <= 0:
            return []
        targets = self.rng.choice(self._bad, size=n_targets, replace=False)
        return self._cast(targets, need=1)

    def _attack_step13(self) -> List[VoteAction]:
        need = max(1, math.ceil(self.params.c0_vote_threshold))
        budget = math.floor(self.step13_fraction * len(self._unused))
        n_targets = min(self._bad.size, budget // need)
        if n_targets <= 0:
            return []
        targets = self.rng.choice(self._bad, size=n_targets, replace=False)
        return self._cast(targets, need)

    def _attack_iteration(self) -> List[VoteAction]:
        candidates = self.tracker.candidates
        bad_candidates = np.array(
            [c for c in candidates if int(c) in self._bad_set],
            dtype=np.int64,
        )
        if bad_candidates.size == 0:
            return []
        need = math.floor(self.tracker.iteration_threshold()) + 1
        n_targets = min(bad_candidates.size, len(self._unused) // need)
        if n_targets <= 0:
            return []
        return self._cast(bad_candidates[:n_targets], need)
