"""The oblivious counterpart of the split-vote adversary (Section 2.3).

The paper distinguishes two adversary powers: an *oblivious* adversary
fixes the dishonest players' actions independent of the coin flips; an
*adaptive* one reacts to realized history. DISTILL is proved against the
adaptive one — which raises the measurable question (ablation A5): how
much does adaptivity actually buy the attacker?

:class:`ObliviousSplitVoteAdversary` runs the same threshold-splitting
playbook as :class:`~repro.adversaries.split_vote.SplitVoteAdversary`,
but commits its entire posting schedule at reset, before a single coin is
flipped. It can do this because Step 1's phase lengths are deterministic
functions of the public parameters; what it *cannot* do is react to the
realized candidate sets — its iteration-phase votes target the bad
objects it planted, under its own precomputed schedule of phase
boundaries (assuming ATTEMPT does not restart), and are simply wasted
whenever reality diverges.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.adversaries.base import Adversary
from repro.billboard.views import BillboardView
from repro.core.parameters import DistillParameters
from repro.sim.actions import VoteAction
from repro.world.instance import Instance


class ObliviousSplitVoteAdversary(Adversary):
    """Threshold-splitting with a schedule fixed before the run.

    Parameters mirror the adaptive version where meaningful.
    """

    name = "oblivious-split-vote"

    def __init__(
        self,
        params: Optional[DistillParameters] = None,
        step11_fraction: float = 0.25,
        step13_fraction: float = 0.5,
        planned_iterations: int = 3,
    ) -> None:
        if planned_iterations < 0:
            raise ValueError(
                f"planned_iterations must be >= 0, got {planned_iterations}"
            )
        self.params = params or DistillParameters()
        self.step11_fraction = step11_fraction
        self.step13_fraction = step13_fraction
        self.planned_iterations = planned_iterations

    # ------------------------------------------------------------------
    def reset(self, instance: Instance, rng: np.random.Generator) -> None:
        super().reset(instance, rng)
        self._schedule: Dict[int, List[VoteAction]] = {}
        bad = self.bad_object_ids()
        voters = list(self.rng.permutation(self.dishonest_ids))
        if bad.size == 0 or not voters:
            return

        n = instance.n
        len_s11 = 2 * self.params.step11_invocations(
            n, instance.alpha, instance.beta
        )
        len_s13 = 2 * self.params.step13_invocations(instance.alpha)
        len_iter = 2 * self.params.iteration_invocations(instance.alpha)

        def take(count: int) -> List[int]:
            nonlocal voters
            if len(voters) < count:
                return []
            batch, voters = voters[:count], voters[count:]
            return [int(p) for p in batch]

        def cast(round_no: int, targets: np.ndarray, need: int) -> None:
            for obj in targets:
                batch = take(need)
                if not batch:
                    return
                self._schedule.setdefault(round_no, []).extend(
                    VoteAction(player=p, object_id=int(obj)) for p in batch
                )

        # Step 1.1 window: dilute S with distinct bad objects.
        n_dilute = min(
            bad.size, math.floor(self.step11_fraction * len(voters))
        )
        dilute = self.rng.choice(bad, size=n_dilute, replace=False)
        cast(0, dilute, need=1)

        # Step 1.3 window: push chosen bad objects to the C0 threshold.
        need_c0 = max(1, math.ceil(self.params.c0_vote_threshold))
        budget_c0 = math.floor(self.step13_fraction * len(voters))
        planted = self.rng.choice(
            bad,
            size=min(bad.size, max(budget_c0 // need_c0, 0)),
            replace=False,
        )
        if planted.size:
            cast(len_s11, planted, need=need_c0)

        # Iteration windows: keep the planted objects alive under the
        # *planned* candidate counts (planted + 1 good survivor), for a
        # fixed number of iterations — all guessed in advance.
        c_guess = int(planted.size) + 1
        start = len_s11 + len_s13
        for t in range(self.planned_iterations):
            if c_guess <= 1 or not voters:
                break
            need = (
                math.floor(
                    self.params.iteration_vote_threshold(n, c_guess)
                )
                + 1
            )
            keep = min(c_guess - 1, len(voters) // need)
            if keep <= 0:
                break
            targets = planted[:keep]
            cast(start + t * len_iter, targets, need=need)
            c_guess = keep + 1

    def act(self, round_no: int, view: BillboardView) -> List[VoteAction]:
        return self._schedule.pop(round_no, [])
