"""Batched (trial-lane) adversaries.

The batched engine asks its adversary one lane at a time —
``act(lane, round_no, view)`` — because each lane's attack depends on
that lane's own billboard history and rng stream. What batching buys on
the adversary side is therefore *within-lane* vectorization of the
expensive adversaries, not cross-lane fusion:

* the split-vote adversary's vote-slot pool becomes a numpy array with a
  vectorized distinct-identity allocator
  (:class:`VectorSlotSplitVoteAdversary`), replacing the quadratic Python
  list rebuild that dominates the scalar engine's E3 profile;
* silent and random-votes adversaries are already O(1) per round and run
  as plain per-lane instances.

Equivalence contract: per lane, the rng draw sequence and the emitted
actions are exactly the scalar adversary's for the same instance and
stream. The split-vote subclass below only re-implements the slot
*bookkeeping*; every draw and every attack decision is inherited code.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.adversaries.base import Adversary
from repro.adversaries.random_votes import RandomVotesAdversary
from repro.adversaries.silent import SilentAdversary
from repro.adversaries.split_vote import SplitVoteAdversary
from repro.billboard.views import BillboardView
from repro.core.parameters import DistillParameters
from repro.sim.actions import VoteAction
from repro.world.instance import Instance


class BatchedAdversary:
    """Base class for lane-indexed Byzantine adversaries."""

    name: str = "adversary"

    def reset_lanes(
        self,
        instances: Sequence[Instance],
        rngs: Sequence[np.random.Generator],
    ) -> None:
        raise NotImplementedError

    def act(
        self, lane: int, round_no: int, view: BillboardView
    ) -> List[VoteAction]:
        """Votes lane ``lane``'s dishonest players cast this round."""
        raise NotImplementedError


class PerLaneAdversary(BatchedAdversary):
    """Adapter: one scalar :class:`Adversary` instance per lane.

    The automatic fallback that makes every scalar adversary batchable;
    draw sequences are trivially identical because each lane runs its own
    instance against its own pinned stream.
    """

    def __init__(self, adversaries: Sequence[Adversary]) -> None:
        if not adversaries:
            raise ValueError("PerLaneAdversary needs at least one lane")
        self._adversaries = list(adversaries)
        self.name = self._adversaries[0].name

    def reset_lanes(
        self,
        instances: Sequence[Instance],
        rngs: Sequence[np.random.Generator],
    ) -> None:
        for adversary, instance, rng in zip(self._adversaries, instances, rngs):
            adversary.reset(instance, rng)

    def act(
        self, lane: int, round_no: int, view: BillboardView
    ) -> List[VoteAction]:
        return self._adversaries[lane].act(round_no, view)


class MixedLaneAdversary(BatchedAdversary):
    """Per-lane *optional* adversaries, for grid lanes.

    Grid-packed batches (:func:`~repro.sim.runner.run_trial_grid`) may mix
    lanes from experiment cells with different adversaries — including
    cells with none at all. ``None`` lanes are inert: they emit no
    actions and their pinned adversary stream is never touched, exactly
    like a scalar run with ``adversary=None``.
    """

    def __init__(self, adversaries: Sequence[Optional[Adversary]]) -> None:
        if not adversaries:
            raise ValueError("MixedLaneAdversary needs at least one lane")
        self._adversaries = list(adversaries)
        named = [a for a in self._adversaries if a is not None]
        self.name = named[0].name if named else "adversary"

    def reset_lanes(
        self,
        instances: Sequence[Instance],
        rngs: Sequence[np.random.Generator],
    ) -> None:
        for adversary, instance, rng in zip(self._adversaries, instances, rngs):
            if adversary is not None:
                adversary.reset(instance, rng)

    def act(
        self, lane: int, round_no: int, view: BillboardView
    ) -> List[VoteAction]:
        adversary = self._adversaries[lane]
        if adversary is None:
            return []
        return adversary.act(round_no, view)


class VectorSlotSplitVoteAdversary(SplitVoteAdversary):
    """Split-vote adversary with a vectorized vote-slot allocator.

    The scalar ``_cast`` calls ``_take_votes`` once per target, and each
    call rebuilds the slot pool as a Python list — quadratic over an
    attack window, and the single hottest path of the whole E3 cell.

    This subclass exploits a structural invariant of the pool: ``reset``
    builds it as ``votes_per_identity`` contiguous blocks of one
    permutation of the dishonest identities, and the only consumer
    (``_cast``) takes slots from the front. Every reachable pool state is
    therefore a contiguous window of that periodic sequence, so any
    prefix of length ``<= n_distinct`` is automatically pairwise
    distinct — the scalar scan's "first ``need`` distinct identities in
    scan order" is simply the pool's first ``need`` entries. One whole
    ``_cast`` collapses to a single slice + reshape, with the exact
    action order of the scalar loop, pinned by the equivalence suite.
    """

    def reset(self, instance: Instance, rng: np.random.Generator) -> None:
        super().reset(instance, rng)
        self._unused = np.asarray(self._unused, dtype=np.int64)
        self._n_distinct = int(np.unique(self._unused).size)

    def _cast(self, targets: np.ndarray, need: int) -> List[VoteAction]:
        pool = self._unused
        # Scalar behaviour when a full distinct batch is impossible:
        # _take_votes returns [] consuming nothing, and _cast breaks at
        # the first such target.
        if need > min(pool.size, self._n_distinct):
            return []
        n_batches = min(len(targets), pool.size // need)
        if n_batches == 0:
            return []
        taken = pool[: n_batches * need].reshape(n_batches, need)
        self._unused = pool[n_batches * need:]
        return [
            VoteAction(player=int(p), object_id=int(obj))
            for obj, row in zip(targets[:n_batches], taken)
            for p in row
        ]


class BatchedSilentAdversary(PerLaneAdversary):
    """Lane-indexed silent adversary (a no-op per lane)."""

    def __init__(self, n_lanes: int) -> None:
        super().__init__([SilentAdversary() for _ in range(n_lanes)])


class BatchedRandomVotesAdversary(PerLaneAdversary):
    """Lane-indexed random-votes adversary.

    The scalar implementation pre-draws its whole schedule at reset and
    acts by dict lookup, so per-lane instances are already optimal.
    """

    def __init__(self, n_lanes: int, horizon: int = 64) -> None:
        super().__init__(
            [RandomVotesAdversary(horizon=horizon) for _ in range(n_lanes)]
        )


class BatchedSplitVoteAdversary(PerLaneAdversary):
    """Lane-indexed split-vote adversary with vectorized slot pools."""

    def __init__(
        self,
        n_lanes: int,
        params: Optional[DistillParameters] = None,
        step11_fraction: float = 0.25,
        step13_fraction: float = 0.5,
        votes_per_identity: int = 1,
    ) -> None:
        super().__init__(
            [
                VectorSlotSplitVoteAdversary(
                    params=params,
                    step11_fraction=step11_fraction,
                    step13_fraction=step13_fraction,
                    votes_per_identity=votes_per_identity,
                )
                for _ in range(n_lanes)
            ]
        )


def batched_adversary_for(
    make_adversary: Optional[Callable[[], Optional[Adversary]]],
    n_lanes: int,
) -> Optional[BatchedAdversary]:
    """Build the batched counterpart of a scalar adversary factory.

    Scalar adversaries that batch themselves natively expose
    ``make_batched(n_lanes)``; everything else gets one instance per lane.
    ``None`` factories (or factories returning ``None``) mean no
    adversary.
    """
    if make_adversary is None:
        return None
    template = make_adversary()
    if template is None:
        return None
    maker = getattr(template, "make_batched", None)
    if maker is not None:
        return maker(n_lanes)
    return PerLaneAdversary(
        [template] + [make_adversary() for _ in range(n_lanes - 1)]
    )
