"""Synchronous simulation substrate.

The paper's execution model (Sections 1.2 and 2.1): computation proceeds in
rounds; in each round every *active* honest player reads the billboard,
probes one object (or idles), and posts the outcome; a player is active
until it has probed a good object. The Byzantine adversary may post
arbitrarily on behalf of dishonest players, observing everything realized
so far (adaptive adversary, Section 2.3).

* :mod:`~repro.sim.actions` — the adversary's vote actions.
* :class:`~repro.sim.engine.SynchronousEngine` — the round loop.
* :class:`~repro.sim.metrics.RunMetrics` — per-run outcome record.
* :mod:`~repro.sim.runner` — Monte-Carlo trial aggregation.
"""

from repro.sim.actions import VoteAction
from repro.sim.batch_engine import BatchedEngine, batch_fallback_reason
from repro.sim.async_engine import (
    AsyncRunMetrics,
    AsyncStrategy,
    AsynchronousEngine,
    PerStepAdapter,
)
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.sim.metrics import RunMetrics
from repro.sim.runner import GridCell, TrialResults, run_trial_grid, run_trials
from repro.sim.schedules import (
    RandomSchedule,
    RoundRobinSchedule,
    Schedule,
    SoloFirstSchedule,
    StarvationSchedule,
)
from repro.sim.sync_adapter import SynchronizedDistillAdapter
from repro.sim.trace import Trace, TraceEvent, replay_metrics

__all__ = [
    "AsyncRunMetrics",
    "AsyncStrategy",
    "AsynchronousEngine",
    "BatchedEngine",
    "EngineConfig",
    "GridCell",
    "batch_fallback_reason",
    "PerStepAdapter",
    "RandomSchedule",
    "RoundRobinSchedule",
    "RunMetrics",
    "Schedule",
    "SoloFirstSchedule",
    "StarvationSchedule",
    "SynchronizedDistillAdapter",
    "SynchronousEngine",
    "Trace",
    "TraceEvent",
    "replay_metrics",
    "TrialResults",
    "VoteAction",
    "run_trial_grid",
    "run_trials",
]
