"""Monte-Carlo trial runner.

Every experiment in the paper is a statement about *expectations* (or
high-probability events) over the algorithm's coins. The runner executes
many independent trials — fresh world, fresh coins, fresh adversary state —
and aggregates the per-run summaries into arrays with confidence intervals.

Factory-based design: the caller supplies callables that build the
instance, strategy, and adversary for each trial, so that worlds can be
resampled (expectations over the instance distribution, as in the Yao-style
lower-bound experiments) or held fixed (expectations over coins only).

Trials are independent by construction (each gets its own
:class:`~repro.rng.RngFactory` child), so the runner can fan them out over
a process pool (``n_jobs``): per-trial seed sequences are derived *before*
dispatch, in trial order, and results are re-assembled in trial order, so
the aggregated arrays are bit-identical to the serial path for the same
seed regardless of ``n_jobs`` or chunking.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.rng import RngFactory, SeedLike
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.sim.metrics import RunMetrics
from repro.strategies.base import Strategy, StrategyContext
from repro.world.instance import Instance

if TYPE_CHECKING:  # type-only: avoids a package-level import cycle
    from repro.adversaries.base import Adversary

InstanceFactory = Callable[[np.random.Generator], Instance]
StrategyFactory = Callable[[], Strategy]
AdversaryFactory = Callable[[], Optional["Adversary"]]
ContextFactory = Callable[[Instance], Optional[StrategyContext]]

#: one trial's outputs: (summary row, strategy info, kept metrics or None)
_TrialRecord = Tuple[Dict[str, float], Dict[str, Any], Optional[RunMetrics]]


@dataclass
class TrialResults:
    """Aggregated outcomes of a batch of independent trials.

    ``per_trial`` maps each summary key (see
    :meth:`~repro.sim.metrics.RunMetrics.summary`) to an array of one value
    per trial; ``metrics`` optionally keeps the full per-run records.
    """

    per_trial: Dict[str, np.ndarray]
    metrics: List[RunMetrics] = field(default_factory=list)
    strategy_infos: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        if not self.per_trial:
            raise ConfigurationError(
                "TrialResults carries no per-trial data; it was built "
                "from zero trials"
            )
        key = next(iter(self.per_trial))
        return int(self.per_trial[key].shape[0])

    def mean(self, key: str) -> float:
        """Trial mean of one summary statistic."""
        return float(self.per_trial[key].mean())

    def std(self, key: str) -> float:
        return float(self.per_trial[key].std(ddof=1)) if self.n_trials > 1 else 0.0

    def sem(self, key: str) -> float:
        """Standard error of the mean."""
        return self.std(key) / np.sqrt(self.n_trials)

    def ci95(self, key: str) -> float:
        """Half-width of a normal-approximation 95% confidence interval."""
        return 1.96 * self.sem(key)

    def quantile(self, key: str, q: float) -> float:
        return float(np.quantile(self.per_trial[key], q))

    def success_rate(self) -> float:
        """Fraction of trials in which all honest players succeeded."""
        return self.mean("all_honest_satisfied")

    def describe(self, key: str) -> str:
        return f"{self.mean(key):.3f} ± {self.ci95(key):.3f} (95% CI)"


def _execute_trial(
    trial_factory: RngFactory,
    make_instance: InstanceFactory,
    make_strategy: StrategyFactory,
    make_adversary: AdversaryFactory,
    make_context: Optional[ContextFactory],
    config: Optional[EngineConfig],
    keep_metrics: bool,
) -> _TrialRecord:
    """Run one trial from its dedicated rng factory.

    The spawn order below — world, honest coins, adversary coins, spare —
    is a pinned contract (see the stream-order regression test): changing
    it, or dropping the spare, shifts every seeded result in the suite.
    """
    world_rng = trial_factory.spawn_generator()
    honest_rng = trial_factory.spawn_generator()
    adversary_rng = trial_factory.spawn_generator()
    trial_factory.spawn_generator()  # spare: reserved for future streams

    instance = make_instance(world_rng)
    strategy = make_strategy()
    adversary = make_adversary()
    ctx = make_context(instance) if make_context is not None else None

    engine = SynchronousEngine(
        instance,
        strategy,
        adversary=adversary,
        rng=honest_rng,
        adversary_rng=adversary_rng,
        config=config,
        ctx=ctx,
    )
    result = engine.run()
    return (
        result.summary(),
        result.strategy_info,
        result if keep_metrics else None,
    )


# ----------------------------------------------------------------------
# Process-pool backend
# ----------------------------------------------------------------------
# The trial factories are plain callables (often closures), which do not
# survive pickling. The pool therefore uses the ``fork`` start method:
# the worker state is parked in this module-level slot immediately before
# the pool forks, and children inherit it by memory snapshot. Only the
# per-trial seed sequences travel through the pickle channel.
_WORKER_STATE: Optional[Dict[str, Any]] = None


def _run_trial_chunk(
    chunk: List[Tuple[int, np.random.SeedSequence]],
) -> List[Tuple[int, _TrialRecord]]:
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - defends against misuse
        raise RuntimeError("worker state missing; was the pool forked?")
    return [
        (index, _execute_trial(RngFactory(seed_sequence), **state))
        for index, seed_sequence in chunk
    ]


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` knob: ``None``/1 → serial, ``-1`` → all cores."""
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    if n_jobs == -1:
        return max(os.cpu_count() or 1, 1)
    if n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be a positive integer or -1 (all cores), got {n_jobs}"
        )
    return n_jobs


def _run_parallel(
    trial_factories: List[RngFactory],
    jobs: int,
    chunk_size: Optional[int],
    state: Dict[str, Any],
) -> List[_TrialRecord]:
    """Fan the trials out over a forked process pool, preserving order."""
    indexed = [
        (index, factory.seed_sequence)
        for index, factory in enumerate(trial_factories)
    ]
    if chunk_size is None:
        # ~4 chunks per worker: coarse enough to amortize dispatch,
        # fine enough to keep stragglers from idling the pool.
        chunk_size = max(1, math.ceil(len(indexed) / (jobs * 4)))
    chunks = [
        indexed[start : start + chunk_size]
        for start in range(0, len(indexed), chunk_size)
    ]
    context = multiprocessing.get_context("fork")
    global _WORKER_STATE
    previous = _WORKER_STATE
    _WORKER_STATE = state
    try:
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(chunks)), mp_context=context
        ) as pool:
            chunk_results = list(pool.map(_run_trial_chunk, chunks))
    finally:
        _WORKER_STATE = previous
    flat = [pair for chunk in chunk_results for pair in chunk]
    flat.sort(key=lambda pair: pair[0])
    return [record for _index, record in flat]


def run_trials(
    make_instance: InstanceFactory,
    make_strategy: StrategyFactory,
    make_adversary: AdversaryFactory = lambda: None,
    n_trials: int = 32,
    seed: SeedLike = 0,
    config: Optional[EngineConfig] = None,
    make_context: Optional[ContextFactory] = None,
    keep_metrics: bool = False,
    n_jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> TrialResults:
    """Run ``n_trials`` independent simulations and aggregate summaries.

    Each trial draws four independent generator streams (world, honest
    coins, adversary coins, spare) from a per-trial child of ``seed``, so
    results are reproducible and trials are statistically independent.
    The spare stream is spawned but unused; it reserves a slot so future
    stream additions do not shift existing seeded results.

    Parameters
    ----------
    n_jobs:
        Worker processes for trial execution. ``None`` or ``1`` runs
        serially in-process; ``-1`` uses every core. Parallel execution
        requires the ``fork`` start method (any Unix); where it is
        unavailable the runner falls back to the serial path. Results are
        bit-identical across all ``n_jobs`` values for the same seed.
    chunk_size:
        Trials per dispatched work unit (default: ~4 chunks per worker).
        Affects scheduling only, never results.
    """
    if n_trials < 1:
        raise ConfigurationError(
            f"n_trials must be a positive integer, got {n_trials}"
        )
    jobs = resolve_n_jobs(n_jobs)

    root = RngFactory.from_seed(seed)
    trial_factories = list(root.trial_factories(n_trials))
    state: Dict[str, Any] = dict(
        make_instance=make_instance,
        make_strategy=make_strategy,
        make_adversary=make_adversary,
        make_context=make_context,
        config=config,
        keep_metrics=keep_metrics,
    )

    parallel = (
        jobs > 1
        and n_trials > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if parallel:
        records = _run_parallel(trial_factories, jobs, chunk_size, state)
    else:
        records = [
            _execute_trial(factory, **state) for factory in trial_factories
        ]

    rows = [record[0] for record in records]
    infos = [record[1] for record in records]
    kept = [record[2] for record in records if record[2] is not None]

    keys = rows[0].keys()
    per_trial = {
        key: np.array([row[key] for row in rows], dtype=np.float64)
        for key in keys
    }
    return TrialResults(per_trial=per_trial, metrics=kept, strategy_infos=infos)
