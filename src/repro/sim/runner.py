"""Monte-Carlo trial runner.

Every experiment in the paper is a statement about *expectations* (or
high-probability events) over the algorithm's coins. The runner executes
many independent trials — fresh world, fresh coins, fresh adversary state —
and aggregates the per-run summaries into arrays with confidence intervals.

Factory-based design: the caller supplies callables that build the
instance, strategy, and adversary for each trial, so that worlds can be
resampled (expectations over the instance distribution, as in the Yao-style
lower-bound experiments) or held fixed (expectations over coins only).

Trials are independent by construction (each gets its own
:class:`~repro.rng.RngFactory` child), so the runner can fan them out over
a process pool (``n_jobs``): per-trial seed sequences are derived *before*
dispatch, in trial order, and results are re-assembled in trial order, so
the aggregated arrays are bit-identical to the serial path for the same
seed regardless of ``n_jobs`` or chunking.

Execution is delegated to the pluggable fabric in :mod:`repro.exec`
(``executor=``): the serial reference backend, the local fork pool, or
TCP socket workers with lease-based recovery — all dispatching the same
pre-derived seeds, so results are bit-identical regardless of where (or
how many times, after crashes) a trial ran.

The runner is additionally hardened for long sweeps (see
``docs/robustness.md``):

* ``timeout=`` — a per-trial wall-clock cap; a hung engine raises
  :class:`~repro.errors.TrialTimeoutError` instead of stalling the
  sweep. Enforced by the monotonic-deadline watchdog in
  :mod:`repro.exec.deadline`, on any thread and every backend.
* crashed workers (a broken pool, a lost socket worker) are retried on
  the shared :class:`~repro.exec.retry.RetryPolicy` backoff; a retry
  re-dispatches the *same* pre-derived seed sequences, so retried
  trials are bit-identical to an undisturbed run. When a backend's
  retry budget runs out the sweep degrades down the executor chain
  (socket → local pool → serial) rather than giving up.
* ``checkpoint_path=`` — completed trials are appended to a JSONL
  checkpoint as they finish; an interrupted sweep resumes from the last
  completed chunk and produces ``per_trial`` arrays bit-identical to an
  uninterrupted run of the same seed.
* ``fault_plan=`` — a :class:`~repro.faults.plan.FaultPlan` applied to
  every trial's engine via the pinned fourth per-trial rng stream
  (reserved as a spare since the parallel-runner change), so enabling
  faults never shifts the world/honest/adversary streams. Faults run on
  the batched engine too (one injector per lane), so ``batch_lanes``
  and ``fault_plan`` compose without a fallback.

Finally, :func:`run_trial_grid` packs trials from *different* experiment
cells sharing ``(n, m)`` — varying alpha/beta/strategy/adversary/fault
plan per lane — into shared engine batches, so a sweep whose cells are
individually too small to fill ``batch_lanes`` still runs full lanes.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import warnings
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.billboard.sparse import normalize_substrate
from repro.errors import CheckpointError, ConfigurationError, TrialTimeoutError
from repro.exec import (
    Executor,
    LocalPoolExecutor,
    RetryPolicy,
    SerialExecutor,
    SocketWorkerExecutor,
    execute_with_fallback,
)
from repro.exec.deadline import trial_deadline as _trial_deadline
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.manifest import RunManifest, collect_manifest
from repro.obs.registry import Registry, active_registry
from repro.rng import RngFactory, SeedLike, make_seed_sequence
from repro.sim.batch_engine import BatchedEngine, batch_fallback_reason
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.sim.metrics import RunMetrics
from repro.strategies.base import Strategy, StrategyContext
from repro.world.instance import Instance

if TYPE_CHECKING:  # type-only: avoids a package-level import cycle
    from repro.adversaries.base import Adversary

InstanceFactory = Callable[[np.random.Generator], Instance]
StrategyFactory = Callable[[], Strategy]
AdversaryFactory = Callable[[], Optional["Adversary"]]
ContextFactory = Callable[[Instance], Optional[StrategyContext]]

#: one trial's outputs: (summary row, strategy info, kept metrics or None)
_TrialRecord = Tuple[Dict[str, float], Dict[str, Any], Optional[RunMetrics]]

#: one dispatchable unit: (trial index, pre-derived seed sequence)
_IndexedSeed = Tuple[int, np.random.SeedSequence]


@dataclass
class TrialResults:
    """Aggregated outcomes of a batch of independent trials.

    ``per_trial`` maps each summary key (see
    :meth:`~repro.sim.metrics.RunMetrics.summary`) to an array of one value
    per trial; ``metrics`` optionally keeps the full per-run records.
    """

    per_trial: Dict[str, np.ndarray]
    metrics: List[RunMetrics] = field(default_factory=list)
    strategy_infos: List[Dict[str, Any]] = field(default_factory=list)
    #: provenance record for the sweep (see :mod:`repro.obs.manifest`);
    #: ``None`` only for hand-built instances
    manifest: Optional[RunManifest] = None

    @property
    def n_trials(self) -> int:
        if not self.per_trial:
            raise ConfigurationError(
                "TrialResults carries no per-trial data; it was built "
                "from zero trials"
            )
        key = next(iter(self.per_trial))
        return int(self.per_trial[key].shape[0])

    def _column(self, key: str) -> np.ndarray:
        """One summary statistic's per-trial array, with a helpful error
        naming the available keys when ``key`` is unknown."""
        try:
            return self.per_trial[key]
        except KeyError:
            raise ConfigurationError(
                f"unknown summary key {key!r}; available keys: "
                f"{sorted(self.per_trial)}"
            ) from None

    def mean(self, key: str) -> float:
        """Trial mean of one summary statistic."""
        return float(self._column(key).mean())

    def std(self, key: str) -> float:
        column = self._column(key)
        return float(column.std(ddof=1)) if self.n_trials > 1 else 0.0

    def sem(self, key: str) -> float:
        """Standard error of the mean."""
        return self.std(key) / np.sqrt(self.n_trials)

    def ci95(self, key: str) -> float:
        """Half-width of a normal-approximation 95% confidence interval."""
        return 1.96 * self.sem(key)

    def quantile(self, key: str, q: float) -> float:
        return float(np.quantile(self._column(key), q))

    def success_rate(self) -> float:
        """Fraction of trials in which all honest players succeeded."""
        return self.mean("all_honest_satisfied")

    def describe(self, key: str) -> str:
        return f"{self.mean(key):.3f} ± {self.ci95(key):.3f} (95% CI)"


# ----------------------------------------------------------------------
# Per-trial execution
# ----------------------------------------------------------------------
# The per-trial wall-clock budget is enforced by the executor fabric's
# monotonic-deadline watchdog (see :mod:`repro.exec.deadline`): same
# TrialTimeoutError, same message, but it works off the main thread and
# on every backend, where the old SIGALRM interval timer could not.


def _execute_trial(
    trial_factory: RngFactory,
    make_instance: InstanceFactory,
    make_strategy: StrategyFactory,
    make_adversary: AdversaryFactory,
    make_context: Optional[ContextFactory],
    config: Optional[EngineConfig],
    keep_metrics: bool,
    fault_plan: Optional[FaultPlan] = None,
    timeout: Optional[float] = None,
    substrate: Optional[str] = None,
    obs: Optional[Registry] = None,
) -> _TrialRecord:
    """Run one trial from its dedicated rng factory.

    The spawn order below — world, honest coins, adversary coins, faults —
    is a pinned contract (see the stream-order regression test): changing
    it, or dropping a stream, shifts every seeded result in the suite.
    The fourth stream was reserved as an unused spare before the fault
    layer existed, which is exactly why wiring faults through it keeps
    clean runs bit-identical.
    """
    with _trial_deadline(timeout):
        world_rng = trial_factory.spawn_generator()
        honest_rng = trial_factory.spawn_generator()
        adversary_rng = trial_factory.spawn_generator()
        fault_rng = trial_factory.spawn_generator()

        injector = None
        if fault_plan is not None and not fault_plan.is_null():
            injector = FaultInjector(fault_plan, fault_rng)

        instance = make_instance(world_rng)
        strategy = make_strategy()
        adversary = make_adversary()
        ctx = make_context(instance) if make_context is not None else None

        engine = SynchronousEngine(
            instance,
            strategy,
            adversary=adversary,
            rng=honest_rng,
            adversary_rng=adversary_rng,
            config=config,
            ctx=ctx,
            fault_injector=injector,
            obs=obs,
            substrate=substrate,
        )
        result = engine.run()
        if obs is not None:
            obs.counter("trial.completed").add()
        return (
            result.summary(),
            result.strategy_info,
            result if keep_metrics else None,
        )


# ----------------------------------------------------------------------
# Process-pool backend
# ----------------------------------------------------------------------
# The trial factories are plain callables (often closures), which do not
# survive pickling. The pool therefore uses the ``fork`` start method:
# the worker state is parked in this module-level slot immediately before
# the pool forks, and children inherit it by memory snapshot. Only the
# per-trial seed sequences travel through the pickle channel.
_WORKER_STATE: Optional[Dict[str, Any]] = None


def _run_trial_chunk(
    chunk: Sequence[_IndexedSeed],
) -> Tuple[List[Tuple[int, _TrialRecord]], Optional[Dict[str, Any]]]:
    """Worker entry: run one chunk, shipping metrics home as a snapshot.

    A forked worker inherits the parent's :class:`Registry` by memory
    snapshot, so increments made here would be invisible to the parent.
    Each chunk therefore accumulates into a *fresh* registry (fresh per
    chunk, not per worker — a worker that handles several chunks must not
    re-ship earlier chunks' counts) whose plain-dict snapshot returns
    through the pickle channel for the parent to merge.
    """
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - defends against misuse
        raise RuntimeError("worker state missing; was the pool forked?")
    if state.get("obs") is None:
        return _run_chunk(chunk, state), None
    local_state = dict(state)
    local = local_state["obs"] = Registry()
    pairs = _run_chunk(chunk, local_state)
    return pairs, local.snapshot()


#: one-time-per-process flags for the degradation warnings below
_DEGRADE_WARNED = False
_BATCH_FALLBACK_WARNED = False


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalize an ``n_jobs`` knob: ``None``/1 → serial, ``-1`` → all cores.

    A request for more workers than the host has cores is a pessimization
    (pure pool overhead — the recorded ``BENCH_runner.json`` trajectory
    shows 0.94× on a 1-core box), so it auto-degrades to the core count
    (serial on a 1-core host), warning once per process.
    """
    global _DEGRADE_WARNED
    if n_jobs is None:
        return 1
    n_jobs = int(n_jobs)
    cores = max(os.cpu_count() or 1, 1)
    if n_jobs == -1:
        return cores
    if n_jobs < 1:
        raise ConfigurationError(
            f"n_jobs must be a positive integer or -1 (all cores), got {n_jobs}"
        )
    if n_jobs > cores:
        target = "serial execution" if cores == 1 else f"{cores} worker(s)"
        if not _DEGRADE_WARNED:
            warnings.warn(
                f"n_jobs={n_jobs} exceeds the {cores} available core(s); "
                f"degrading to {target} (a pool larger than the machine is "
                "pure overhead)",
                RuntimeWarning,
                stacklevel=2,
            )
            _DEGRADE_WARNED = True
        return cores
    return n_jobs


def _executor_chain(
    executor: Union[str, Executor, None],
    executor_fallback: bool,
    jobs: int,
    retry: RetryPolicy,
    parallel_viable: bool,
) -> List[Executor]:
    """Resolve the ``executor=`` knob into a degradation chain.

    ``None`` preserves the pre-fabric behaviour: the local fork pool
    when one is viable (``n_jobs > 1``, more than one pending trial,
    ``fork`` available), otherwise plain serial. Names pick a backend
    explicitly; an :class:`~repro.exec.base.Executor` instance is used
    as given. Unless ``executor_fallback`` is off, every chain ends in
    :class:`~repro.exec.serial.SerialExecutor`, so a sweep survives any
    environmental failure and only genuine trial errors abort it.
    """
    chain: List[Executor]
    if executor is None:
        if parallel_viable:
            chain = [LocalPoolExecutor(n_jobs=jobs, retry=retry)]
        else:
            chain = [SerialExecutor()]
    elif isinstance(executor, str):
        name = executor.strip().lower()
        if name == "serial":
            chain = [SerialExecutor()]
        elif name == "local":
            chain = [LocalPoolExecutor(n_jobs=jobs, retry=retry)]
        elif name == "socket":
            chain = [
                SocketWorkerExecutor(n_workers=max(jobs, 2), retry=retry),
                LocalPoolExecutor(n_jobs=jobs, retry=retry),
            ]
        else:
            raise ConfigurationError(
                f"unknown executor {executor!r}; choose from 'serial', "
                "'local', 'socket', or pass an Executor instance"
            )
    elif isinstance(executor, Executor):
        chain = [executor]
        if parallel_viable and isinstance(executor, SocketWorkerExecutor):
            chain.append(LocalPoolExecutor(n_jobs=jobs, retry=retry))
    else:
        raise ConfigurationError(
            f"executor must be None, a backend name, or an Executor "
            f"instance, got {executor!r}"
        )
    if not isinstance(chain[-1], SerialExecutor):
        chain.append(SerialExecutor())
    if not executor_fallback:
        chain = chain[:1]
    return chain


def _run_serial_chunk(
    chunk: Sequence[_IndexedSeed], state: Dict[str, Any]
) -> List[Tuple[int, _TrialRecord]]:
    """Run one chunk in-process (the serial path and the degraded pool)."""
    return _run_chunk(chunk, state)


def _run_chunk(
    chunk: Sequence[_IndexedSeed], state: Dict[str, Any]
) -> List[Tuple[int, _TrialRecord]]:
    """Execute one chunk of trials, batching into engine lanes if asked.

    ``state`` is the execution-knob dict built by :func:`run_trials`; the
    ``batch_lanes`` entry (absent or 1 → scalar) is a chunk-runner knob,
    not an :func:`_execute_trial` argument, so it is split off here.
    """
    state = dict(state)
    lanes = state.pop("batch_lanes", 1) or 1
    obs: Optional[Registry] = state.get("obs")
    if obs is not None:
        obs.counter("runner.chunks").add()
    if lanes > 1:
        out: List[Tuple[int, _TrialRecord]] = []
        for start in range(0, len(chunk), lanes):
            group = list(chunk[start : start + lanes])
            try:
                out.extend(_execute_trial_batch(group, **state))
            except TrialTimeoutError as exc:
                labels = ", ".join(str(index) for index, _seed in group)
                raise TrialTimeoutError(f"trials {labels}: {exc}") from None
        return out
    out = []
    for index, seed_sequence in chunk:
        try:
            record = _execute_trial(RngFactory(seed_sequence), **state)
        except TrialTimeoutError as exc:
            raise TrialTimeoutError(f"trial {index}: {exc}") from None
        out.append((index, record))
    return out


def _execute_trial_batch(
    group: Sequence[_IndexedSeed],
    make_instance: InstanceFactory,
    make_strategy: StrategyFactory,
    make_adversary: AdversaryFactory,
    make_context: Optional[ContextFactory],
    config: Optional[EngineConfig],
    keep_metrics: bool,
    fault_plan: Optional[FaultPlan] = None,
    timeout: Optional[float] = None,
    substrate: Optional[str] = None,
    obs: Optional[Registry] = None,
) -> List[Tuple[int, _TrialRecord]]:
    """Run one group of trials as lanes of a single :class:`BatchedEngine`.

    Per lane, the stream spawn order is *exactly* :func:`_execute_trial`'s
    pinned contract — world, honest coins, adversary coins, faults — from
    that trial's own pre-derived seed sequence, so each lane's randomness
    is bit-identical to a scalar run of the same trial. A non-null
    ``fault_plan`` gets one scalar :class:`FaultInjector` per lane on
    that lane's pinned fourth stream, batched behind a
    :class:`~repro.faults.batched.BatchedFaultInjector`. The wall-clock
    deadline scales with the group: ``timeout`` is a per-trial budget and
    a batch advances ``len(group)`` trials.
    """
    from repro.adversaries.batched import batched_adversary_for
    from repro.faults.batched import BatchedFaultInjector
    from repro.strategies.batched import batched_strategy_for

    wants_faults = fault_plan is not None and not fault_plan.is_null()
    budget = timeout * len(group) if timeout is not None else None
    with _trial_deadline(budget):
        instances: List[Instance] = []
        honest_rngs: List[np.random.Generator] = []
        adversary_rngs: List[np.random.Generator] = []
        injectors: List[Optional[FaultInjector]] = []
        for _index, seed_sequence in group:
            trial_factory = RngFactory(seed_sequence)
            world_rng = trial_factory.spawn_generator()
            honest_rngs.append(trial_factory.spawn_generator())
            adversary_rngs.append(trial_factory.spawn_generator())
            fault_rng = trial_factory.spawn_generator()  # the pinned fault/spare stream
            injectors.append(
                FaultInjector(fault_plan, fault_rng)
                if wants_faults and fault_plan is not None
                else None
            )
            instances.append(make_instance(world_rng))
        faults = (
            BatchedFaultInjector(injectors) if wants_faults else None
        )
        strategy = batched_strategy_for(make_strategy, len(group))
        adversary = batched_adversary_for(make_adversary, len(group))
        ctxs = [
            make_context(instance) if make_context is not None else None
            for instance in instances
        ]
        engine = BatchedEngine(
            instances,
            strategy,
            adversary=adversary,
            rngs=honest_rngs,
            adversary_rngs=adversary_rngs,
            config=config,
            ctxs=ctxs,
            faults=faults,
            obs=obs,
            substrate=substrate,
        )
        metrics = engine.run()
    if obs is not None:
        obs.counter("trial.completed").add(len(group))
        obs.counter("trial.batched").add(len(group))
    return [
        (
            index,
            (
                lane_metrics.summary(),
                lane_metrics.strategy_info,
                lane_metrics if keep_metrics else None,
            ),
        )
        for (index, _seed), lane_metrics in zip(group, metrics)
    ]


# ----------------------------------------------------------------------
# Grid lanes: one batch, many experiment cells
# ----------------------------------------------------------------------
@dataclass
class GridCell:
    """One experiment cell of a :func:`run_trial_grid` sweep.

    A cell is exactly the per-cell argument set of :func:`run_trials` —
    its own factories, trial count, seed, and fault plan — minus the
    execution knobs, which the grid shares. Per-trial seed streams are
    derived from ``seed`` precisely as a standalone ``run_trials`` call
    would derive them, which is what makes grid-packed results
    bit-identical to running each cell on its own.
    """

    make_instance: InstanceFactory
    make_strategy: StrategyFactory
    make_adversary: AdversaryFactory = lambda: None
    n_trials: int = 32
    seed: SeedLike = 0
    make_context: Optional[ContextFactory] = None
    fault_plan: Optional[FaultPlan] = None
    #: optional display name (sweeps label cells "loss=0.25" and such)
    label: Optional[str] = None


def _execute_grid_group(
    group: Sequence[Tuple[int, int, np.random.SeedSequence]],
    cells: Sequence[GridCell],
    config: Optional[EngineConfig],
    keep_metrics: bool,
    timeout: Optional[float],
    substrate: Optional[str],
    obs: Optional[Registry],
) -> List[_TrialRecord]:
    """Run one mixed-cell lane group through a single :class:`BatchedEngine`.

    ``group`` holds ``(cell index, trial index, seed sequence)`` units.
    Each lane spawns its four pinned streams from its own trial's seed
    sequence and builds its state from its *own cell's* factories, so a
    lane is bit-identical to the same trial run by that cell's standalone
    ``run_trials``. When every lane comes from factories of the same cell
    the native batched strategy/adversary implementations are used;
    mixed-cell groups run per-lane scalar instances (always correct — the
    equivalence contract does not depend on which adapter serves a lane).
    """
    from repro.adversaries.batched import (
        MixedLaneAdversary,
        batched_adversary_for,
    )
    from repro.faults.batched import BatchedFaultInjector
    from repro.strategies.batched import PerLaneStrategy, batched_strategy_for

    budget = timeout * len(group) if timeout is not None else None
    with _trial_deadline(budget):
        lane_cells = [cells[c_idx] for c_idx, _t_idx, _seed in group]
        instances: List[Instance] = []
        honest_rngs: List[np.random.Generator] = []
        adversary_rngs: List[np.random.Generator] = []
        injectors: List[Optional[FaultInjector]] = []
        for cell, (_c_idx, _t_idx, seed_sequence) in zip(lane_cells, group):
            trial_factory = RngFactory(seed_sequence)
            world_rng = trial_factory.spawn_generator()
            honest_rngs.append(trial_factory.spawn_generator())
            adversary_rngs.append(trial_factory.spawn_generator())
            fault_rng = trial_factory.spawn_generator()
            plan = cell.fault_plan
            injectors.append(
                FaultInjector(plan, fault_rng)
                if plan is not None and not plan.is_null()
                else None
            )
            instances.append(cell.make_instance(world_rng))
        faults = (
            BatchedFaultInjector(injectors)
            if any(injector is not None for injector in injectors)
            else None
        )

        strategy_makers = [cell.make_strategy for cell in lane_cells]
        if all(maker is strategy_makers[0] for maker in strategy_makers):
            strategy = batched_strategy_for(strategy_makers[0], len(group))
        else:
            strategy = PerLaneStrategy([maker() for maker in strategy_makers])

        adversary_makers = [cell.make_adversary for cell in lane_cells]
        if all(maker is adversary_makers[0] for maker in adversary_makers):
            adversary = batched_adversary_for(adversary_makers[0], len(group))
        else:
            per_lane = [maker() for maker in adversary_makers]
            adversary = (
                MixedLaneAdversary(per_lane)
                if any(a is not None for a in per_lane)
                else None
            )

        ctxs = [
            cell.make_context(instance)
            if cell.make_context is not None
            else None
            for cell, instance in zip(lane_cells, instances)
        ]
        engine = BatchedEngine(
            instances,
            strategy,
            adversary=adversary,
            rngs=honest_rngs,
            adversary_rngs=adversary_rngs,
            config=config,
            ctxs=ctxs,
            faults=faults,
            obs=obs,
            substrate=substrate,
        )
        metrics = engine.run()
    if obs is not None:
        obs.counter("trial.completed").add(len(group))
        obs.counter("trial.batched").add(len(group))
    return [
        (
            lane_metrics.summary(),
            lane_metrics.strategy_info,
            lane_metrics if keep_metrics else None,
        )
        for lane_metrics in metrics
    ]


def run_trial_grid(
    cells: Sequence[GridCell],
    config: Optional[EngineConfig] = None,
    batch_lanes: Optional[int] = None,
    keep_metrics: bool = False,
    timeout: Optional[float] = None,
    substrate: Optional[str] = None,
    obs: Optional[Registry] = None,
) -> List[TrialResults]:
    """Run a grid of experiment cells with cross-cell lane packing.

    Flattens every cell's trials into one work list (cell order, then
    trial order), chunks it into ``batch_lanes``-sized groups — groups
    may *mix cells*, which is the point: sweep cells whose ``n_trials``
    is small no longer waste lane capacity — and runs each group through
    one :class:`~repro.sim.batch_engine.BatchedEngine`. Lanes carry
    their cell's own alpha/beta (via the instance), strategy, adversary,
    and fault plan; all cells must share ``(n, m)`` (the engine enforces
    this) and the grid shares one ``config`` and one ``substrate`` knob
    (bit-inert — see :func:`run_trials`).

    Returns one :class:`TrialResults` per cell, in cell order, each
    bit-identical — ``per_trial`` arrays, kept metrics, ``fault_info``,
    everything — to a standalone ``run_trials`` call with that cell's
    arguments (enforced by the equivalence suite). Per-cell manifests
    are attached as usual; ``registry.manifest`` is left alone because a
    grid has no single sweep identity.

    ``batch_lanes=None``/``1`` — or a configuration the batched engine
    cannot run (structured traces) — degrades to one scalar
    ``run_trials`` call per cell, same results, with the usual fallback
    audit trail.
    """
    if not cells:
        raise ConfigurationError("run_trial_grid needs at least one cell")
    for cell in cells:
        if cell.n_trials < 1:
            raise ConfigurationError(
                f"n_trials must be a positive integer, got {cell.n_trials} "
                f"(cell {cell.label or cells.index(cell)!r})"
            )
    try:
        lanes = 1 if batch_lanes is None else int(batch_lanes)
    except (TypeError, ValueError):
        lanes = 0
    if lanes < 1:
        raise ConfigurationError(
            f"batch_lanes must be a positive integer, got {batch_lanes!r}"
        )
    # Validate once up front (and normalize for the manifests below) so a
    # bad knob fails before any trial runs, on every path.
    substrate_label = (
        None if substrate is None else normalize_substrate(substrate)
    )
    if lanes <= 1 or batch_fallback_reason(config, None) is not None:
        # Per-cell delegation: run_trials owns the fallback warning, the
        # batch.fallback counter, and the manifest reason in this path.
        return [
            run_trials(
                cell.make_instance,
                cell.make_strategy,
                cell.make_adversary,
                n_trials=cell.n_trials,
                seed=cell.seed,
                config=config,
                make_context=cell.make_context,
                keep_metrics=keep_metrics,
                batch_lanes=batch_lanes,
                fault_plan=cell.fault_plan,
                timeout=timeout,
                substrate=substrate,
                obs=obs,
            )
            for cell in cells
        ]

    registry = obs if obs is not None else active_registry()
    if registry is not None:
        registry.counter("runner.grid_runs").add()
        registry.counter("runner.grid_cells").add(len(cells))

    units: List[Tuple[int, int, np.random.SeedSequence]] = []
    for c_idx, cell in enumerate(cells):
        root = RngFactory.from_seed(cell.seed)
        for t_idx, factory in enumerate(root.trial_factories(cell.n_trials)):
            units.append((c_idx, t_idx, factory.seed_sequence))

    done: Dict[Tuple[int, int], _TrialRecord] = {}
    span = (
        registry.timer("runner.run_trial_grid").time()
        if registry is not None
        else nullcontext()
    )
    with span:
        for start in range(0, len(units), lanes):
            group = units[start : start + lanes]
            try:
                records = _execute_grid_group(
                    group, cells, config, keep_metrics, timeout, substrate,
                    registry,
                )
            except TrialTimeoutError as exc:
                labels = ", ".join(
                    f"cell {c}/trial {t}" for c, t, _seed in group
                )
                raise TrialTimeoutError(f"{labels}: {exc}") from None
            for (c_idx, t_idx, _seed), record in zip(group, records):
                done[(c_idx, t_idx)] = record
            if registry is not None:
                registry.counter("runner.grid_groups").add()

    out: List[TrialResults] = []
    for c_idx, cell in enumerate(cells):
        records = [done[(c_idx, t_idx)] for t_idx in range(cell.n_trials)]
        rows = [record[0] for record in records]
        infos = [record[1] for record in records]
        kept = [record[2] for record in records if record[2] is not None]
        per_trial = {
            key: np.array([row[key] for row in rows], dtype=np.float64)
            for key in rows[0].keys()
        }
        out.append(
            TrialResults(
                per_trial=per_trial,
                metrics=kept,
                strategy_infos=infos,
                manifest=collect_manifest(
                    seed=cell.seed,
                    n_trials=cell.n_trials,
                    config=config,
                    fault_plan=cell.fault_plan,
                    substrate=substrate_label,
                ),
            )
        )
    return out


# ----------------------------------------------------------------------
# Checkpointing
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    """JSON encoder hook for the numpy types strategy infos carry."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON-serializable: {type(value)!r}")


def _open_checkpoint(path: str, mode: str) -> Any:
    """Open a checkpoint file, translating environmental failures.

    A missing parent directory or a read-only filesystem is a caller
    configuration problem, not a corrupt checkpoint, so it surfaces as
    :class:`ConfigurationError` with the actionable path/reason instead
    of a raw ``OSError`` traceback mid-sweep. Note ``os.access`` is no
    pre-check here: it reports writable for root even on read-only
    mounts, so only the real ``open`` tells the truth.
    """
    try:
        return open(path, mode)
    except OSError as exc:
        action = "read" if mode == "r" else "write"
        raise ConfigurationError(
            f"cannot {action} checkpoint {path!r}: {exc}; check that the "
            "directory exists and is writable"
        ) from None


class _Checkpoint:
    """Incremental JSONL checkpoint of completed trials.

    Line 1 is a header binding the file to one sweep (seed fingerprint +
    trial count); every further line is one completed trial's summary row
    and strategy info. Rows round-trip through JSON exactly (Python's
    float repr is shortest-round-trip), so a resumed sweep's ``per_trial``
    arrays are bit-identical to an uninterrupted run.
    """

    def __init__(self, path: str, seed: SeedLike, n_trials: int) -> None:
        self.path = path
        self.header = {
            "kind": "header",
            "version": 1,
            "seed_entropy": str(make_seed_sequence(seed).entropy),
            "n_trials": n_trials,
        }

    def load(self) -> Dict[int, _TrialRecord]:
        """Validate the header and return the completed trials by index.

        A missing file starts a fresh checkpoint (the header is written
        immediately so even a sweep killed before its first completed
        chunk resumes cleanly).
        """
        if not os.path.exists(self.path):
            with _open_checkpoint(self.path, "w") as handle:
                handle.write(json.dumps(self.header, sort_keys=True) + "\n")
            return {}
        with _open_checkpoint(self.path, "r") as handle:
            lines = [line for line in handle.read().splitlines() if line]
        if not lines:
            raise CheckpointError(f"checkpoint {self.path} is empty")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint {self.path} has an unreadable header: {exc}"
            ) from None
        for key in ("seed_entropy", "n_trials"):
            if header.get(key) != self.header[key]:
                raise CheckpointError(
                    f"checkpoint {self.path} belongs to a different sweep "
                    f"({key}: checkpoint has {header.get(key)!r}, this run "
                    f"has {self.header[key]!r}); refusing to mix results"
                )
        done: Dict[int, _TrialRecord] = {}
        for line_no, line in enumerate(lines[1:], start=2):
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                # a partially written trailing line (the sweep was killed
                # mid-append) is the expected crash artifact: ignore it
                # and re-run that trial
                continue
            index = int(entry["index"])
            if not 0 <= index < self.header["n_trials"]:
                raise CheckpointError(
                    f"checkpoint {self.path} line {line_no} names trial "
                    f"{index}, outside 0..{self.header['n_trials'] - 1}"
                )
            done[index] = (entry["row"], entry["info"], None)
        return done

    def append(self, pairs: Sequence[Tuple[int, _TrialRecord]]) -> None:
        """Persist completed trials (one JSON line each, flushed)."""
        with _open_checkpoint(self.path, "a") as handle:
            for index, (row, info, _metrics) in pairs:
                handle.write(
                    json.dumps(
                        {"index": index, "row": row, "info": info},
                        sort_keys=True,
                        default=_jsonable,
                    )
                    + "\n"
                )
            handle.flush()
            os.fsync(handle.fileno())


# ----------------------------------------------------------------------
def run_trials(
    make_instance: InstanceFactory,
    make_strategy: StrategyFactory,
    make_adversary: AdversaryFactory = lambda: None,
    n_trials: int = 32,
    seed: SeedLike = 0,
    config: Optional[EngineConfig] = None,
    make_context: Optional[ContextFactory] = None,
    keep_metrics: bool = False,
    n_jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    batch_lanes: Optional[int] = None,
    fault_plan: Optional[FaultPlan] = None,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    backoff_base: float = 0.5,
    checkpoint_path: Optional[str] = None,
    executor: Union[str, Executor, None] = None,
    executor_fallback: bool = True,
    substrate: Optional[str] = None,
    obs: Optional[Registry] = None,
) -> TrialResults:
    """Run ``n_trials`` independent simulations and aggregate summaries.

    Each trial draws four independent generator streams (world, honest
    coins, adversary coins, faults) from a per-trial child of ``seed``, so
    results are reproducible and trials are statistically independent.
    The fourth stream feeds the fault layer and is spawned even when no
    faults are configured (it predates the fault layer as a reserved
    spare), which is what keeps clean seeded results pinned.

    Parameters
    ----------
    n_jobs:
        Worker processes for trial execution. ``None`` or ``1`` runs
        serially in-process; ``-1`` uses every core. Parallel execution
        requires the ``fork`` start method (any Unix); where it is
        unavailable the runner falls back to the serial path. Results are
        bit-identical across all ``n_jobs`` values for the same seed.
    chunk_size:
        Trials per dispatched work unit (default: ~4 chunks per worker,
        rounded up to whole lane groups when batching). Affects
        scheduling only, never results.
    batch_lanes:
        Trials advanced in lockstep per engine invocation (the
        :class:`~repro.sim.batch_engine.BatchedEngine`). ``None`` or
        ``1`` uses the scalar engine. Batching composes with ``n_jobs``
        (each worker runs whole batches), checkpointing, and ``timeout``
        (the deadline scales with the group size), and per-trial results
        are **identical** to the scalar engine's for every supported
        configuration — enforced by the equivalence suite. Fault plans
        batch natively (one scalar injector per lane on its pinned
        fourth stream); the one remaining unsupported configuration —
        structured traces — degrades to the scalar engine with a
        one-time warning quoting the reason, a ``batch.fallback``
        counter increment, and the reason recorded on the sweep's
        :class:`~repro.obs.manifest.RunManifest`.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` injected into every
        trial's engine. ``None`` — or a plan with every rate zero — is
        bit-identical to the fault-free runner.
    timeout:
        Per-trial wall-clock cap in seconds; a trial running past it
        raises :class:`~repro.errors.TrialTimeoutError` (no retry: a hung
        trial is deterministic). Enforced by the monotonic-deadline
        watchdog (:mod:`repro.exec.deadline`) on every backend — main
        thread, scheduler threads, forked and socket workers alike.
    max_retries:
        Recovery budget when workers die — pool rebuilds for the local
        backend, replacement workers for the socket backend — before the
        backend gives up and the degradation chain takes over. Retries
        re-dispatch the same pre-derived seed sequences, so results stay
        bit-identical however many retries it takes. ``max_retries`` and
        ``backoff_base`` seed the shared
        :class:`~repro.exec.retry.RetryPolicy`.
    backoff_base:
        First retry delay in seconds; doubled on each further retry
        (capped — see :class:`~repro.exec.retry.RetryPolicy`).
    executor:
        Which execution backend runs the trials: ``None`` (the local
        fork pool when ``n_jobs`` asks for one, else serial), a backend
        name (``"serial"``, ``"local"``, ``"socket"``), or an
        :class:`~repro.exec.base.Executor` instance (e.g. a configured
        :class:`~repro.exec.sockets.SocketWorkerExecutor`). Results are
        bit-identical across all backends for the same seed; the chosen
        backend and its worker/reassignment log are recorded in the
        manifest's ``executor`` field.
    executor_fallback:
        When ``True`` (default) a failing backend degrades down the
        chain — socket → local pool → serial — with a warning and an
        ``exec.degraded`` counter per step, keeping partial results.
        ``False`` runs the selected backend only and lets its
        :class:`~repro.errors.ExecutorError` propagate (completed
        trials are already checkpointed when ``checkpoint_path`` is
        set, so an aborted sweep resumes cleanly).
    substrate:
        Billboard storage substrate for every trial's engine:
        ``"dense"`` (the original per-player arrays), ``"sparse"`` (the
        columnar sharded-ledger substrate that scales with *active*
        players — see :mod:`repro.billboard.sparse`), or ``"auto"``
        (``None`` too) to pick sparse at or above
        :data:`~repro.billboard.sparse.SPARSE_AUTO_THRESHOLD` players.
        The substrate is bit-inert: results are identical for every
        choice (enforced by the sparse equivalence suite); the requested
        knob is recorded in the manifest's ``substrate`` field.
    checkpoint_path:
        Incremental JSONL checkpoint of completed trials. If the file
        already exists (same seed and trial count — anything else raises
        :class:`~repro.errors.CheckpointError`), completed trials are
        loaded and only the remainder runs; the merged ``per_trial``
        arrays are bit-identical to an uninterrupted run. Incompatible
        with ``keep_metrics`` (full :class:`RunMetrics` records are not
        checkpointable).
    obs:
        Optional :class:`~repro.obs.registry.Registry` collecting
        counters and timers for this sweep; ``None`` falls back to the
        process-wide :func:`~repro.obs.registry.active_registry` (itself
        ``None`` unless installed — observability is off by default).
        Metrics are bit-inert: they never touch a random stream, so
        every result is identical with and without a registry, for any
        ``n_jobs``/``batch_lanes`` (enforced by the obs equivalence
        suite). The sweep's :class:`~repro.obs.manifest.RunManifest` is
        always attached to the returned :class:`TrialResults` and, when
        a registry is active, stashed on ``registry.manifest``.
    """
    if n_trials < 1:
        raise ConfigurationError(
            f"n_trials must be a positive integer, got {n_trials}"
        )
    if max_retries < 0:
        raise ConfigurationError(
            f"max_retries must be >= 0, got {max_retries}"
        )
    # Validate the substrate knob before any work is dispatched; the
    # normalized label (None stays None) is what the manifest records.
    substrate_label = (
        None if substrate is None else normalize_substrate(substrate)
    )
    jobs = resolve_n_jobs(n_jobs)

    global _BATCH_FALLBACK_WARNED
    try:
        lanes = 1 if batch_lanes is None else int(batch_lanes)
    except (TypeError, ValueError):
        lanes = 0
    if lanes < 1:
        raise ConfigurationError(
            f"batch_lanes must be a positive integer, got {batch_lanes!r}"
        )
    fallback_reason: Optional[str] = None
    if lanes > 1:
        fallback_reason = batch_fallback_reason(config, fault_plan)
        if fallback_reason is not None:
            if not _BATCH_FALLBACK_WARNED:
                warnings.warn(
                    f"batch_lanes={lanes} is not supported for this "
                    f"configuration ({fallback_reason!r}); falling back to "
                    "the scalar engine (results are identical, only slower)",
                    RuntimeWarning,
                    stacklevel=2,
                )
                _BATCH_FALLBACK_WARNED = True
            lanes = 1

    checkpoint: Optional[_Checkpoint] = None
    done: Dict[int, _TrialRecord] = {}
    if checkpoint_path is not None:
        if keep_metrics:
            raise ConfigurationError(
                "checkpoint_path is incompatible with keep_metrics: full "
                "RunMetrics records are not checkpointable"
            )
        checkpoint = _Checkpoint(checkpoint_path, seed, n_trials)
        done = checkpoint.load()

    registry = obs if obs is not None else active_registry()
    if registry is not None:
        registry.counter("runner.runs").add()
        registry.counter("runner.trials_requested").add(n_trials)
        if fallback_reason is not None:
            registry.counter("batch.fallback").add()
        if done:
            registry.counter("runner.trials_resumed").add(len(done))

    root = RngFactory.from_seed(seed)
    trial_factories = list(root.trial_factories(n_trials))
    pending: List[_IndexedSeed] = [
        (index, factory.seed_sequence)
        for index, factory in enumerate(trial_factories)
        if index not in done
    ]
    state: Dict[str, Any] = dict(
        make_instance=make_instance,
        make_strategy=make_strategy,
        make_adversary=make_adversary,
        make_context=make_context,
        config=config,
        keep_metrics=keep_metrics,
        fault_plan=fault_plan,
        timeout=timeout,
        substrate=substrate,
        obs=registry,
    )
    if lanes > 1:
        state["batch_lanes"] = lanes
    on_chunk_done = checkpoint.append if checkpoint is not None else None

    retry = RetryPolicy(max_retries=max_retries, backoff_base=backoff_base)
    parallel_viable = (
        jobs > 1
        and len(pending) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    chain = _executor_chain(
        executor, executor_fallback, jobs, retry, parallel_viable
    )
    executor_report: Optional[Dict[str, Any]] = None
    # The only timing in the runner layer: the Timer owns the clock read
    # (inside repro.obs, outside the determinism-critical packages).
    span = (
        registry.timer("runner.run_trials").time()
        if registry is not None
        else nullcontext()
    )
    with span:
        if pending:
            if len(chain) == 1:
                used = chain[0]
                used._reset_report()
                done.update(
                    used.run(
                        pending,
                        state,
                        chunk_size=chunk_size,
                        on_chunk_done=on_chunk_done,
                    )
                )
            else:
                completed, used = execute_with_fallback(
                    chain,
                    pending,
                    state,
                    chunk_size=chunk_size,
                    on_chunk_done=on_chunk_done,
                    obs=registry,
                )
                done.update(completed)
            executor_report = used.report.to_dict()

    manifest = collect_manifest(
        seed=seed,
        n_trials=n_trials,
        config=config,
        fault_plan=fault_plan,
        batch_fallback_reason=fallback_reason,
        executor=executor_report,
        substrate=substrate_label,
    )
    if registry is not None:
        registry.manifest = manifest

    records = [done[index] for index in range(n_trials)]
    rows = [record[0] for record in records]
    infos = [record[1] for record in records]
    kept = [record[2] for record in records if record[2] is not None]

    keys = rows[0].keys()
    per_trial = {
        key: np.array([row[key] for row in rows], dtype=np.float64)
        for key in keys
    }
    return TrialResults(
        per_trial=per_trial,
        metrics=kept,
        strategy_infos=infos,
        manifest=manifest,
    )
