"""Monte-Carlo trial runner.

Every experiment in the paper is a statement about *expectations* (or
high-probability events) over the algorithm's coins. The runner executes
many independent trials — fresh world, fresh coins, fresh adversary state —
and aggregates the per-run summaries into arrays with confidence intervals.

Factory-based design: the caller supplies callables that build the
instance, strategy, and adversary for each trial, so that worlds can be
resampled (expectations over the instance distribution, as in the Yao-style
lower-bound experiments) or held fixed (expectations over coins only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional

import numpy as np

from repro.rng import RngFactory, SeedLike
from repro.sim.engine import EngineConfig, SynchronousEngine
from repro.sim.metrics import RunMetrics
from repro.strategies.base import Strategy, StrategyContext
from repro.world.instance import Instance

if TYPE_CHECKING:  # type-only: avoids a package-level import cycle
    from repro.adversaries.base import Adversary

InstanceFactory = Callable[[np.random.Generator], Instance]
StrategyFactory = Callable[[], Strategy]
AdversaryFactory = Callable[[], Optional["Adversary"]]
ContextFactory = Callable[[Instance], Optional[StrategyContext]]


@dataclass
class TrialResults:
    """Aggregated outcomes of a batch of independent trials.

    ``per_trial`` maps each summary key (see
    :meth:`~repro.sim.metrics.RunMetrics.summary`) to an array of one value
    per trial; ``metrics`` optionally keeps the full per-run records.
    """

    per_trial: Dict[str, np.ndarray]
    metrics: List[RunMetrics] = field(default_factory=list)
    strategy_infos: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def n_trials(self) -> int:
        key = next(iter(self.per_trial))
        return int(self.per_trial[key].shape[0])

    def mean(self, key: str) -> float:
        """Trial mean of one summary statistic."""
        return float(self.per_trial[key].mean())

    def std(self, key: str) -> float:
        return float(self.per_trial[key].std(ddof=1)) if self.n_trials > 1 else 0.0

    def sem(self, key: str) -> float:
        """Standard error of the mean."""
        return self.std(key) / np.sqrt(self.n_trials)

    def ci95(self, key: str) -> float:
        """Half-width of a normal-approximation 95% confidence interval."""
        return 1.96 * self.sem(key)

    def quantile(self, key: str, q: float) -> float:
        return float(np.quantile(self.per_trial[key], q))

    def success_rate(self) -> float:
        """Fraction of trials in which all honest players succeeded."""
        return self.mean("all_honest_satisfied")

    def describe(self, key: str) -> str:
        return f"{self.mean(key):.3f} ± {self.ci95(key):.3f} (95% CI)"


def run_trials(
    make_instance: InstanceFactory,
    make_strategy: StrategyFactory,
    make_adversary: AdversaryFactory = lambda: None,
    n_trials: int = 32,
    seed: SeedLike = 0,
    config: Optional[EngineConfig] = None,
    make_context: Optional[ContextFactory] = None,
    keep_metrics: bool = False,
) -> TrialResults:
    """Run ``n_trials`` independent simulations and aggregate summaries.

    Each trial draws four independent generator streams (world, honest
    coins, adversary coins, spare) from a per-trial child of ``seed``, so
    results are reproducible and trials are statistically independent.
    """
    root = RngFactory.from_seed(seed)
    rows: List[Dict[str, float]] = []
    kept: List[RunMetrics] = []
    infos: List[Dict[str, Any]] = []
    for trial_factory in root.trial_factories(n_trials):
        world_rng = trial_factory.spawn_generator()
        honest_rng = trial_factory.spawn_generator()
        adversary_rng = trial_factory.spawn_generator()

        instance = make_instance(world_rng)
        strategy = make_strategy()
        adversary = make_adversary()
        ctx = make_context(instance) if make_context is not None else None

        engine = SynchronousEngine(
            instance,
            strategy,
            adversary=adversary,
            rng=honest_rng,
            adversary_rng=adversary_rng,
            config=config,
            ctx=ctx,
        )
        result = engine.run()
        rows.append(result.summary())
        infos.append(result.strategy_info)
        if keep_metrics:
            kept.append(result)

    keys = rows[0].keys()
    per_trial = {
        key: np.array([row[key] for row in rows], dtype=np.float64)
        for key in keys
    }
    return TrialResults(per_trial=per_trial, metrics=kept, strategy_infos=infos)
