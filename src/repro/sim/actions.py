"""Adversary actions.

Honest players act through their cohort :class:`~repro.strategies.base.Strategy`
(arrays of probe choices); the Byzantine adversary acts through explicit
:class:`VoteAction` records, which the engine validates — an adversary may
only post under identities it controls. Probes by dishonest players are not
mediated by the engine at all: they cost the adversary nothing we measure,
and the Byzantine model lets dishonest players "know" whatever the
adversary scripts, so only their *posts* can influence honest players.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.billboard.post import PostKind


@dataclass(frozen=True)
class VoteAction:
    """A dishonest post: ``player`` posts about ``object_id``.

    ``claimed_value`` is what the post reports as the observed value; it
    only matters in worlds where readers inspect reported values (the
    no-local-testing model), and defaults to 1.0 ("looks good").

    ``kind`` defaults to a positive vote. Slander — a negative REPORT
    post ("that object is bad") — is expressible too; Algorithm DISTILL
    ignores it ("our algorithm uses only positive recommendations"), but
    the Section 6 open-problem extensions
    (:mod:`repro.extensions.slander`) study readers that do not.
    """

    player: int
    object_id: int
    claimed_value: float = 1.0
    kind: PostKind = field(default=PostKind.VOTE)
