"""Structured execution traces and replay audits.

With ``EngineConfig(trace=True)`` the synchronous engine records every
observable event — probe batches, vote posts, halts, adversary posts —
as structured :class:`TraceEvent` records. Traces serve three purposes:

* **debugging** — a run can be inspected event by event or dumped as
  JSON lines;
* **auditing** — :func:`replay_metrics` recomputes the run's metrics
  *from the trace alone* and must agree with the engine's own
  accounting (the integration tests enforce this), so the metrics can
  never silently drift from what actually happened;
* **provenance** — benches can archive traces next to their tables.

Tracing costs memory proportional to probes, so it is off by default.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TraceEvent:
    """One structured event.

    Kinds emitted by the engine: ``probes`` (a round's probe batch),
    ``vote`` (an honest vote post), ``halt`` (players stopping),
    ``adversary`` (a dishonest post), ``end`` (run summary stamp).
    """

    seq: int
    round_no: int
    kind: str
    payload: Dict[str, Any]

    def to_json(self) -> str:
        return json.dumps(
            {
                "seq": self.seq,
                "round": self.round_no,
                "kind": self.kind,
                **self.payload,
            },
            sort_keys=True,
        )


class Trace:
    """An append-only event log for one run."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def record(self, round_no: int, kind: str, **payload: Any) -> None:
        self._events.append(
            TraceEvent(
                seq=len(self._events),
                round_no=round_no,
                kind=kind,
                payload=payload,
            )
        )

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for event in self._events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def to_jsonl(self) -> str:
        """The whole trace as JSON lines (one event per line)."""
        return "\n".join(event.to_json() for event in self._events)

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_jsonl() + "\n")


def replay_metrics(
    trace: Trace, n_players: int, good_mask: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recompute per-player probes/satisfaction from a trace alone.

    Returns ``(probes, satisfied_round, halted_round)`` arrays with the
    same semantics as :class:`~repro.sim.metrics.RunMetrics`. Used by the
    audit tests: the engine's books must match its own event stream.
    """
    if len(trace) == 0:
        raise ConfigurationError("cannot replay an empty trace")
    probes = np.zeros(n_players, dtype=np.int64)
    satisfied = np.full(n_players, -1, dtype=np.int64)
    halted = np.full(n_players, -1, dtype=np.int64)
    for event in trace:
        if event.kind == "probes":
            players = event.payload["players"]
            objects = event.payload["objects"]
            for player, obj in zip(players, objects):
                probes[player] += 1
                if good_mask[obj] and satisfied[player] < 0:
                    satisfied[player] = event.round_no
        elif event.kind == "halt":
            for player in event.payload["players"]:
                halted[player] = event.round_no
    return probes, satisfied, halted
