"""Simulating synchrony over an asynchronous schedule (Section 1.2).

"We can often simulate synchronous behavior in asynchronous environments
with the use of timestamps (an integral part of any posting on any real
billboard)." This module is that sentence, executable.

:class:`SynchronizedDistillAdapter` runs Algorithm DISTILL — a
synchronous protocol — on the asynchronous engine, under any *fair*
schedule, by a timestamp barrier:

* every player carries a **virtual round** counter ``v_p``;
* a scheduled player executes its round-``v_p`` DISTILL action only when
  no active player is behind it (``v_p == min_q v_q``); otherwise it
  idles (waits at the barrier);
* votes are (re-)timestamped with the voter's virtual round on a private
  mirror billboard, so DISTILL's per-stage vote windows ``l_t(i)`` count
  exactly what they would count in the synchronous engine.

A player executing virtual round ``v`` reads the mirror board at horizon
``v`` — posts from virtual rounds ``< v`` — which is precisely the
synchronous start-of-round view, even though peers at the same virtual
round act at different physical steps. Under any schedule that keeps
scheduling every active player, all players sweep through identical
virtual rounds and the execution is distributed identically to a
synchronous one (bench E13 validates this empirically; starvation
schedules show why *fairness* is the one assumption that cannot be
dropped).

Limitation: the asynchronous engine currently runs the honest side only
(dishonest players silent); it exists to validate the synchronous
abstraction, not to re-prove Theorem 4 asynchronously.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.billboard.views import BillboardView
from repro.core.distill import DistillStrategy
from repro.core.parameters import DistillParameters
from repro.core.tracker import DistillPhaseTracker
from repro.sim.async_engine import AsyncStrategy
from repro.strategies.base import StrategyContext
from repro.strategies.probe_advice import AdviceAlternator


class SynchronizedDistillAdapter(AsyncStrategy):
    """DISTILL on the asynchronous engine via a timestamp barrier."""

    name = "async(distill+timestamps)"

    def __init__(self, params: Optional[DistillParameters] = None) -> None:
        self.params = params or DistillParameters()

    # ------------------------------------------------------------------
    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        super().reset(ctx, rng)
        if not ctx.supports_local_testing:
            raise ValueError(
                "the synchronized adapter wraps the Section 4 "
                "(local-testing) algorithm"
            )
        # mirror board: DISTILL's vote windows measured in virtual rounds
        self._mirror = Billboard(ctx.n, ctx.m)
        self.tracker = DistillPhaseTracker(ctx, self.params)
        self.alternator = AdviceAlternator(ctx.n)
        self._vround = np.zeros(ctx.n, dtype=np.int64)
        self._active = np.ones(ctx.n, dtype=bool)
        self._pending_vround: Dict[int, int] = {}
        self._barrier_waits = 0

    # ------------------------------------------------------------------
    def _min_active_vround(self) -> int:
        if not self._active.any():
            return int(self._vround.max())
        return int(self._vround[self._active].min())

    def step(self, step_no: int, player: int, view: BillboardView) -> int:
        v = int(self._vround[player])
        if v > self._min_active_vround():
            # someone is behind; wait at the barrier
            self._barrier_waits += 1
            return -1
        mirror_view = BillboardView(self._mirror, before_round=v)
        self.tracker.advance(v, mirror_view)
        self._pending_vround[player] = v
        if self.tracker.is_advice_round(v):
            pick = self.alternator.advise(1, mirror_view, self.rng)
        else:
            pick = self.alternator.explore(self.tracker.pool, 1, self.rng)
        target = int(pick[0])
        if target < 0:
            # an idle protocol round still completes the virtual round
            self._pending_vround.pop(player, None)
            self._complete_round(player, halted=False)
        return target

    def handle_result(
        self, step_no: int, player: int, object_id: int, value: float
    ) -> Tuple[bool, bool]:
        v = self._pending_vround.pop(player, int(self._vround[player]))
        good = value >= self.ctx.good_threshold
        if good:
            # re-timestamp the vote with the voter's virtual round
            self._mirror.append(
                v, player, object_id, float(value), PostKind.VOTE
            )
        self._complete_round(player, halted=bool(good))
        return bool(good), bool(good)

    def _complete_round(self, player: int, halted: bool) -> None:
        self._vround[player] += 1
        if halted:
            self._active[player] = False

    # ------------------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        out = self.tracker.diagnostics()
        out.update(
            algorithm=self.name,
            barrier_waits=self._barrier_waits,
            max_virtual_round=int(self._vround.max()),
        )
        return out


def sync_reference_strategy(
    params: Optional[DistillParameters] = None,
) -> DistillStrategy:
    """The synchronous strategy the adapter should be equivalent to."""
    return DistillStrategy(params)
