"""The synchronous round engine.

One round of the paper's execution model (Section 2.1), as the engine runs
it:

1. every active honest player reads the billboard *as of the end of the
   previous round* (a :class:`BillboardView` with horizon ``round_no``),
2. the honest cohort strategy picks one probe per active player (coin
   flips happen here),
3. probes are executed: each prober pays the object's cost and observes a
   value through the instance's :class:`~repro.world.valuemodel.ValueModel`,
4. the strategy decides which probes become votes and which players halt;
   votes are posted (negative reports are posted only when
   ``record_reports`` is on — they influence nothing, see
   :class:`~repro.billboard.post.PostKind`),
5. the adversary observes the *complete* board — including this round's
   honest posts and therefore all realized coin flips, the adaptive model
   of Section 2.3 — and casts dishonest votes, validated against its
   identity set.

The engine stops when every honest player is satisfied (has probed a
ground-truth good object), when the strategy declares itself finished
(prescribed-length runs, Section 5.3), or — as a safety net — when
``max_rounds`` elapses, which raises
:class:`~repro.errors.BudgetExceededError` unless ``strict`` is off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.billboard.sparse import (
    SparseBoard,
    choose_substrate,
    substrate_fallback_reason,
)
from repro.billboard.views import BillboardView
from repro.billboard.votes import VoteMode
from repro.errors import (
    AdversaryViolationError,
    BudgetExceededError,
    SimulationError,
)
from repro.sim.metrics import RunMetrics
from repro.strategies.base import Strategy, StrategyContext
from repro.world.instance import Instance
from repro.world.playerstate import finalize_player_array, player_array
from repro.world.valuemodel import TrueValueModel, ValueModel

if TYPE_CHECKING:  # imported lazily to avoid a package-level cycle
    from repro.adversaries.base import Adversary
    from repro.faults.injector import FaultInjector
    from repro.obs.registry import Registry


@dataclass
class EngineConfig:
    """Engine knobs.

    Attributes
    ----------
    max_rounds:
        Safety round budget. DISTILL terminates with probability one, so a
        run hitting this limit is a bug (``strict=True`` raises) or an
        intentionally truncated measurement (``strict=False`` returns
        what happened).
    strict:
        Whether exhausting ``max_rounds`` raises.
    record_reports:
        Whether negative probe reports are appended to the board. They are
        protocol-inert (DISTILL uses positive reports only) but part of the
        model's convention; enable for tracing/audits, disable (default)
        for speed.
    vote_mode:
        Reader-side vote rule for the run's billboard.
    max_votes_per_player:
        The ``f`` of Section 4.1 (MULTI mode).
    """

    max_rounds: int = 1_000_000
    strict: bool = True
    record_reports: bool = False
    vote_mode: VoteMode = VoteMode.SINGLE
    max_votes_per_player: int = 1
    #: record a structured event log (see :mod:`repro.sim.trace`)
    trace: bool = False


class SynchronousEngine:
    """Runs one honest cohort strategy against one adversary.

    Parameters
    ----------
    instance:
        The world (objects + roles).
    strategy:
        Honest cohort protocol. Its :class:`StrategyContext` is built from
        the instance unless ``ctx`` overrides it (e.g. to feed DISTILL a
        wrong hardwired ``α`` on purpose, as Section 5.1's wrapper does).
    adversary:
        Byzantine controller of the dishonest players; ``None`` means the
        dishonest players stay silent.
    value_model:
        Observation model for honest probes; defaults to ground truth.
    rng:
        Generator for the honest cohort's coins. The adversary receives
        its own generator via ``adversary_rng`` so that honest and
        adversarial randomness are independent streams.
    fault_injector:
        Optional :class:`~repro.faults.injector.FaultInjector` applying
        infrastructure faults (lossy billboard, churn, observation
        noise) to the run. ``None`` — the default, and the paper's model
        — leaves every code path byte-identical to the fault-free
        engine. The injector must carry its *own* rng stream.
    obs:
        Optional :class:`~repro.obs.registry.Registry` the run increments
        event counters into (``engine.*``, ``billboard.*``, ``faults.*``).
        Counters only — the engine never reads a clock, keeping
        reprolint's wall-clock ban intact for ``sim``. ``None`` (default)
        costs one predicate check per instrumentation site and results
        are bit-identical either way.
    substrate:
        Billboard storage selection: ``"dense"`` (the chained
        :class:`Billboard`), ``"sparse"`` (the columnar
        :class:`~repro.billboard.sparse.SparseBoard`), or
        ``"auto"``/``None`` (sparse at or above
        :data:`~repro.billboard.sparse.SPARSE_AUTO_THRESHOLD` players).
        Bit-inert: results are identical either way. Trace runs audit
        the hash-chained dense board, so a sparse request degrades to
        dense there (recorded in ``substrate.fallback``).
    """

    def __init__(
        self,
        instance: Instance,
        strategy: Strategy,
        adversary: Optional["Adversary"] = None,
        value_model: Optional[ValueModel] = None,
        rng: Optional[np.random.Generator] = None,
        adversary_rng: Optional[np.random.Generator] = None,
        config: Optional[EngineConfig] = None,
        ctx: Optional[StrategyContext] = None,
        fault_injector: Optional["FaultInjector"] = None,
        obs: Optional["Registry"] = None,
        substrate: Optional[str] = None,
    ) -> None:
        self.instance = instance
        self.strategy = strategy
        self.adversary = adversary
        self.config = config or EngineConfig()
        self.rng = (
            rng
            if rng is not None
            else np.random.default_rng()  # repro: noqa=RPL003(unseeded interactive default; seeded callers pass explicit streams)
        )
        self.adversary_rng = (
            adversary_rng
            if adversary_rng is not None
            else np.random.default_rng()  # repro: noqa=RPL003(unseeded interactive default; seeded callers pass explicit streams)
        )
        self.value_model = value_model or TrueValueModel(instance.space)
        self.ctx = ctx or StrategyContext(
            n=instance.n,
            m=instance.m,
            alpha=instance.alpha,
            beta=instance.beta,
            good_threshold=instance.space.good_threshold,
        )
        resolved = choose_substrate(substrate, instance.n)
        self.substrate_fallback: Optional[str] = None
        if resolved == "sparse":
            reason = substrate_fallback_reason(self.config)
            if reason is not None:
                self.substrate_fallback = reason
                resolved = "dense"
        self.substrate = resolved
        if resolved == "sparse":
            self.board: "Billboard | SparseBoard" = SparseBoard(
                instance.n,
                instance.m,
                vote_mode=self.config.vote_mode,
                max_votes_per_player=self.config.max_votes_per_player,
            )
        else:
            self.board = Billboard(
                instance.n,
                instance.m,
                vote_mode=self.config.vote_mode,
                max_votes_per_player=self.config.max_votes_per_player,
            )
        self.fault_injector = fault_injector
        self.obs = obs
        #: populated when ``config.trace`` is on
        self.trace = None
        if self.config.trace:
            from repro.sim.trace import Trace

            self.trace = Trace()

    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        """Execute rounds until a stop condition; return the metrics."""
        inst = self.instance
        n = inst.n
        good_mask = inst.space.good_mask
        costs = inst.space.costs

        probes = np.zeros(n, dtype=np.int64)
        paid = np.zeros(n, dtype=np.float64)
        satisfied_round = player_array(n, -1, np.int64)
        halted_round = player_array(n, -1, np.int64)
        # The active set is kept as a sorted id array maintained
        # incrementally (set-minus on crash/halt, union on restart), so
        # a round's cost scales with the players that actually act —
        # there is no per-round O(n) mask scan. The arrays stay
        # bit-identical to the flatnonzero(active) scans they replace:
        # every update preserves sorted unique ids.
        active_ids = inst.honest_ids.copy()  # honest players still probing

        faults = self.fault_injector
        value_model = self.value_model
        #: crashed players keyed by the round they restart in; crashed
        #: players cannot probe or halt while down, so each entry stays
        #: exact until its round arrives (restart_after is fixed, hence
        #: at most one batch per restart round)
        restart_at: Dict[int, np.ndarray] = {}
        n_down = 0
        if faults is not None:
            faults.reset()
            value_model = faults.wrap_value_model(value_model)

        self.strategy.reset(self.ctx, self.rng)
        if self.adversary is not None:
            self.adversary.reset(inst, self.adversary_rng)

        # Prefetched counter handles: the hot loop pays one attribute
        # increment per event when observing, one predicate check when not.
        obs = self.obs
        if obs is not None:
            obs.counter(f"substrate.{self.substrate}").add(1)
            if self.substrate_fallback is not None:
                obs.counter("substrate.fallback").add(1)
            count_round = obs.counter("engine.rounds").add
            count_probes = obs.counter("engine.probes").add
            count_votes = obs.counter("engine.votes").add
            count_halts = obs.counter("engine.halts").add

        round_no = 0
        while round_no < self.config.max_rounds:
            if faults is not None:
                self._deliver_due_posts(faults, round_no)
                restarts = restart_at.pop(round_no, None)
                if restarts is not None:
                    n_down -= restarts.size
                    active_ids = np.union1d(active_ids, restarts)
                    faults.note_restarts(restarts)
                    self.strategy.on_player_restart(round_no, restarts)
                    if self.trace is not None:
                        self.trace.record(
                            round_no, "fault_restart", players=restarts.tolist()
                        )
            if active_ids.size == 0 and n_down == 0:
                break
            if self.strategy.finished(round_no):
                break
            if obs is not None:
                count_round()
            if faults is not None:
                # crashes land before probing: a player crashing in round
                # r does not probe in round r
                crashed = faults.crash_coins(round_no, active_ids)
                if crashed.size:
                    active_ids = np.setdiff1d(
                        active_ids, crashed, assume_unique=True
                    )
                    if faults.plan.restart_after is None:
                        halted_round[crashed] = round_no
                    else:
                        restart_at[round_no + faults.plan.restart_after] = (
                            crashed
                        )
                        n_down += crashed.size
                    if self.trace is not None:
                        self.trace.record(
                            round_no, "fault_crash", players=crashed.tolist()
                        )

            if active_ids.size == 0:
                # everyone is down awaiting restart; the world idles
                if self.adversary is not None:
                    self._adversary_turn(round_no)
                round_no += 1
                continue
            honest_view = BillboardView(self.board, before_round=round_no)
            choices = self.strategy.choose_probes(
                round_no, active_ids, honest_view
            )
            choices = np.asarray(choices, dtype=np.int64)
            if choices.shape != active_ids.shape:
                raise SimulationError(
                    f"strategy {self.strategy.name!r} returned "
                    f"{choices.shape} probes for {active_ids.shape} players"
                )

            probing = choices >= 0
            probers = active_ids[probing]
            targets = choices[probing]
            if targets.size and (targets >= inst.m).any():
                raise SimulationError(
                    f"strategy {self.strategy.name!r} probed an unknown object"
                )

            if probers.size:
                if obs is not None:
                    count_probes(int(probers.size))
                values = value_model.observe_many(probers, targets)
                probes[probers] += 1
                paid[probers] += self._probe_costs(round_no, targets, costs)
                if self.trace is not None:
                    self.trace.record(
                        round_no,
                        "probes",
                        players=probers.tolist(),
                        objects=targets.tolist(),
                        values=values.tolist(),
                    )

                newly_good = good_mask[targets] & (satisfied_round[probers] < 0)
                satisfied_round[probers[newly_good]] = round_no

                vote_mask, halt_mask = self.strategy.handle_results(
                    round_no, probers, targets, values
                )
                vote_mask = np.asarray(vote_mask, dtype=bool)
                halt_mask = np.asarray(halt_mask, dtype=bool)

                vote_idx = np.flatnonzero(vote_mask)
                if vote_idx.size:
                    if obs is not None:
                        count_votes(int(vote_idx.size))
                    entries = [
                        (
                            int(probers[idx]),
                            int(targets[idx]),
                            float(values[idx]),
                            PostKind.VOTE,
                        )
                        for idx in vote_idx
                    ]
                    self._post_honest(round_no, entries, faults)
                if self.config.record_reports:
                    report_idx = np.flatnonzero(~vote_mask)
                    if report_idx.size:
                        self._post_honest(
                            round_no,
                            [
                                (
                                    int(probers[idx]),
                                    int(targets[idx]),
                                    float(values[idx]),
                                    PostKind.REPORT,
                                )
                                for idx in report_idx
                            ],
                            faults,
                        )

                halters = probers[halt_mask]
                if obs is not None and halters.size:
                    count_halts(int(halters.size))
                if halters.size:
                    # halters probed this round, so they are active —
                    # never pending a restart
                    active_ids = np.setdiff1d(
                        active_ids, halters, assume_unique=True
                    )
                halted_round[halters] = round_no
                if self.trace is not None and halters.size:
                    self.trace.record(
                        round_no, "halt", players=halters.tolist()
                    )

            if self.adversary is not None:
                self._adversary_turn(round_no)

            round_no += 1
        else:
            if self.config.strict:
                raise BudgetExceededError(
                    f"run exceeded {self.config.max_rounds} rounds "
                    f"(strategy={self.strategy.name!r})"
                )

        if obs is not None and faults is not None:
            # fold the injector's realization summary (all ints) into the
            # faults.* phase so obs files carry fault provenance too
            for key, value in faults.info().items():
                obs.counter(f"faults.{key}").add(int(value))

        sat_honest = satisfied_round[inst.honest_mask] >= 0
        return RunMetrics(
            honest_mask=inst.honest_mask.copy(),
            probes=finalize_player_array(probes),
            paid=finalize_player_array(paid),
            satisfied_round=finalize_player_array(satisfied_round),
            halted_round=finalize_player_array(halted_round),
            rounds=round_no,
            all_honest_satisfied=bool(sat_honest.all()),
            strategy_info=self.strategy.info(),
            fault_info=faults.info() if faults is not None else {},
            trace=self.trace,
        )

    # ------------------------------------------------------------------
    def _deliver_due_posts(
        self, faults: "FaultInjector", round_no: int
    ) -> None:
        """Round-start fault effect: deliver delayed posts landing now.

        (Restarts — the other round-start effect — are handled inline in
        :meth:`run` from the restart schedule, so an idle round costs no
        per-player scan.)
        """
        due = faults.due_posts(round_no)
        if due:
            self.board.append_many(round_no, due)
            if self.obs is not None:
                self.obs.counter("billboard.posts_fault_delivered").add(
                    len(due)
                )
            if self.trace is not None:
                for player, object_id, _value, kind in due:
                    self.trace.record(
                        round_no,
                        "fault_deliver",
                        player=int(player),
                        object=int(object_id),
                        post_kind=kind.value,
                    )

    # ------------------------------------------------------------------
    def _post_honest(
        self,
        round_no: int,
        entries: list,
        faults: Optional["FaultInjector"],
    ) -> None:
        """Append honest posts, routing them through the lossy-billboard
        filter when faults are injected. Vote trace events are recorded
        only for posts that actually land this round; drops and delays
        get their own event kinds."""
        if faults is None:
            delivered, dropped, delayed = entries, [], []
        else:
            delivered, dropped, delayed = faults.filter_posts(
                round_no, entries
            )
        if delivered:
            self.board.append_many(round_no, delivered)
            if self.obs is not None:
                self.obs.counter("billboard.posts_honest").add(len(delivered))
        if self.trace is not None:
            for player, object_id, _value, kind in delivered:
                if kind is PostKind.VOTE:
                    self.trace.record(
                        round_no,
                        "vote",
                        player=int(player),
                        object=int(object_id),
                    )
            for player, object_id, _value, kind in dropped:
                self.trace.record(
                    round_no,
                    "fault_drop",
                    player=int(player),
                    object=int(object_id),
                    post_kind=kind.value,
                )
            for deliver_round, (player, object_id, _value, kind) in delayed:
                self.trace.record(
                    round_no,
                    "fault_delay",
                    player=int(player),
                    object=int(object_id),
                    post_kind=kind.value,
                    deliver_round=deliver_round,
                )

    # ------------------------------------------------------------------
    def _probe_costs(
        self, round_no: int, targets: np.ndarray, base_costs: np.ndarray
    ) -> np.ndarray:
        """Cost charged for each probe this round.

        The base engine charges the objects' static costs (the paper's
        model); :class:`~repro.extensions.pricing.PricedEngine` overrides
        this to let reputation feed back into prices (the Section 6 open
        problem).
        """
        return base_costs[targets]

    # ------------------------------------------------------------------
    def _adversary_turn(self, round_no: int) -> None:
        """Let the adversary post, validating identities.

        The whole turn is validated before anything hits the board
        (:meth:`~repro.billboard.board.Billboard.append_many` is
        all-or-nothing), so a violating adversary leaves no partial
        round behind.
        """
        full_view = BillboardView(self.board, before_round=None)
        actions = self.adversary.act(round_no, full_view)
        if not actions:
            return
        # Identity check against the honest mask directly — a set of
        # dishonest ids would be O(n) resident state per engine.
        honest_mask = self.instance.honest_mask
        n = self.instance.n
        entries = []
        for action in actions:
            player = int(action.player)
            if not 0 <= player < n or honest_mask[player]:
                raise AdversaryViolationError(
                    f"adversary {self.adversary.name!r} tried to post as "
                    f"player {action.player}, which it does not control"
                )
            entries.append(
                (
                    int(action.player),
                    int(action.object_id),
                    float(action.claimed_value),
                    action.kind,
                )
            )
        self.board.append_many(round_no, entries)
        if self.obs is not None:
            self.obs.counter("billboard.posts_adversary").add(len(entries))
        if self.trace is not None:
            for action in actions:
                self.trace.record(
                    round_no,
                    "adversary",
                    player=int(action.player),
                    object=int(action.object_id),
                    post_kind=action.kind.value,
                )
