"""Player schedules for the asynchronous execution model.

The paper's prior work [1] uses an asynchronous model: "a basic step is a
single player reading the billboard, probing an object, and updating the
billboard; the player schedule is assumed to be under the control of the
adversary". Section 1.2 then observes that *individual* cost cannot be
bounded there — "a schedule that runs a single player by itself forces
that player to find the good object on its own" — which is exactly why
the paper moves to the synchronous model.

This module provides the schedules used to reproduce both sides of that
argument:

* :class:`RoundRobinSchedule` — the fair schedule under which the paper
  evaluates the prior algorithm ("considered under a synchronous
  schedule, say round robin");
* :class:`RandomSchedule` — uniformly random active player each step;
* :class:`StarvationSchedule` — the adversarial schedule of the
  Section 1.2 remark: one victim player is scheduled as rarely as a
  fairness window permits (with window = ∞ it is fully starved and its
  individual cost degenerates to solo search).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError


class Schedule:
    """Chooses which active player takes the next asynchronous step."""

    name = "schedule"

    def reset(self, n_players: int, rng: np.random.Generator) -> None:
        self.n_players = n_players
        self.rng = rng

    def next_player(self, step_no: int, active_ids: np.ndarray) -> int:
        """Return the id of the player taking step ``step_no``.

        ``active_ids`` is the sorted array of players still searching;
        it is never empty (the engine stops first).
        """
        raise NotImplementedError


class RoundRobinSchedule(Schedule):
    """Cycle through the active players in id order.

    Under this schedule, ``n`` consecutive steps emulate one synchronous
    round — the reading of [1] the paper uses in Section 1.2.
    """

    name = "round-robin"

    def reset(self, n_players: int, rng: np.random.Generator) -> None:
        super().reset(n_players, rng)
        self._cursor = 0

    def next_player(self, step_no: int, active_ids: np.ndarray) -> int:
        # find the next active player at or after the cursor, cyclically
        idx = np.searchsorted(active_ids, self._cursor)
        if idx == active_ids.size:
            idx = 0
        player = int(active_ids[idx])
        self._cursor = player + 1
        if self._cursor >= self.n_players:
            self._cursor = 0
        return player


class RandomSchedule(Schedule):
    """A uniformly random active player takes each step."""

    name = "random"

    def next_player(self, step_no: int, active_ids: np.ndarray) -> int:
        return int(active_ids[self.rng.integers(active_ids.size)])


class SoloFirstSchedule(Schedule):
    """The Section 1.2 degenerate schedule: the victim runs *alone first*.

    "A schedule that runs a single player by itself forces that player to
    find the good object on its own without any assistance from any other
    player." The victim takes every step until it halts; only then do the
    others run (round-robin). Whatever the algorithm, the victim's
    individual cost degenerates to solo search — Θ(1/β) probes — which is
    why the asynchronous model cannot bound individual cost and the paper
    moves to the synchronous one.
    """

    name = "solo-first"

    def __init__(self, victim: int = 0):
        self.victim = victim

    def reset(self, n_players: int, rng: np.random.Generator) -> None:
        super().reset(n_players, rng)
        self._cursor = 0

    def next_player(self, step_no: int, active_ids: np.ndarray) -> int:
        if bool(np.isin(self.victim, active_ids)):
            return int(self.victim)
        idx = np.searchsorted(active_ids, self._cursor)
        if idx == active_ids.size:
            idx = 0
        player = int(active_ids[idx])
        self._cursor = player + 1
        if self._cursor >= self.n_players:
            self._cursor = 0
        return player


class StarvationSchedule(Schedule):
    """Adversarial schedule starving one victim player.

    The victim is scheduled only once every ``fairness_window`` steps
    (the minimal service a fairness assumption would force); every other
    step goes to the victim — no wait, to the *other* players round-robin.
    With ``fairness_window=None`` the victim is never scheduled until all
    other players have halted, realizing the Section 1.2 degenerate case:
    the victim ends up searching alone, and no algorithm can bound its
    individual cost by collaboration.
    """

    name = "starvation"

    def __init__(self, victim: int = 0, fairness_window: Optional[int] = None):
        if fairness_window is not None and fairness_window < 2:
            raise ConfigurationError(
                f"fairness_window must be >= 2, got {fairness_window}"
            )
        self.victim = victim
        self.fairness_window = fairness_window

    def reset(self, n_players: int, rng: np.random.Generator) -> None:
        super().reset(n_players, rng)
        self._cursor = 0

    def next_player(self, step_no: int, active_ids: np.ndarray) -> int:
        victim_active = bool(np.isin(self.victim, active_ids))
        others = active_ids[active_ids != self.victim]
        if victim_active and (
            others.size == 0
            or (
                self.fairness_window is not None
                and step_no % self.fairness_window == self.fairness_window - 1
            )
        ):
            return int(self.victim)
        if others.size == 0:
            return int(active_ids[0])
        idx = np.searchsorted(others, self._cursor)
        if idx == others.size:
            idx = 0
        player = int(others[idx])
        self._cursor = player + 1
        if self._cursor >= self.n_players:
            self._cursor = 0
        return player
