"""The asynchronous execution engine (the model of the prior work [1]).

A basic step: one player — chosen by the schedule, which may be
adversarial — reads the billboard, probes one object, and posts the
outcome. Posts are timestamped with the global step number ("an integral
part of any posting on any real billboard", Section 1.2), which is what
lets synchrony be *simulated*: see
:class:`~repro.sim.sync_adapter.SynchronizedDistillAdapter`.

Strategies for this engine implement the per-step
:class:`AsyncStrategy` interface. The memoryless protocols (trivial,
EC'04 explore/exploit) port directly via :class:`PerStepAdapter`; DISTILL
needs the timestamp-barrier adapter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # type-only: avoids importing faults at module load
    from repro.adversaries.base import Adversary
    from repro.faults.injector import FaultInjector
    from repro.obs.registry import Registry

from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.billboard.views import BillboardView
from repro.billboard.votes import VoteMode
from repro.errors import BudgetExceededError, SimulationError
from repro.sim.schedules import RoundRobinSchedule, Schedule
from repro.strategies.base import Strategy, StrategyContext
from repro.world.instance import Instance
from repro.world.valuemodel import TrueValueModel, ValueModel


class AsyncStrategy:
    """Per-step honest protocol for the asynchronous engine."""

    name = "async-strategy"

    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        self.ctx = ctx
        self.rng = rng

    def step(self, step_no: int, player: int, view: BillboardView) -> int:
        """Choose the object ``player`` probes this step (-1 = idle)."""
        raise NotImplementedError

    def handle_result(
        self, step_no: int, player: int, object_id: int, value: float
    ) -> Tuple[bool, bool]:
        """Digest a probe outcome; return ``(vote, halt)``.

        Default: the local-testing rule (vote for and halt on the first
        object passing the threshold).
        """
        threshold = self.ctx.good_threshold
        if threshold is None:
            raise NotImplementedError(
                "no-local-testing strategies must override handle_result"
            )
        good = value >= threshold
        return good, good

    def info(self) -> Dict[str, Any]:
        return {}

    def on_player_restart(self, step_no: int, player: int) -> None:
        """Fault-injection hook: ``player`` returns from a crash with no
        local memory. Default no-op — per-step strategies are
        billboard-driven, so a restarted player just re-reads the board."""


class PerStepAdapter(AsyncStrategy):
    """Port a memoryless cohort :class:`Strategy` to the async engine.

    Valid only for strategies whose per-round decision does not depend on
    the round number (trivial probing, the EC'04 explore/exploit rule):
    each async step simply asks the wrapped strategy for a one-player
    round.
    """

    def __init__(self, inner: Strategy) -> None:
        self.inner = inner
        self.name = f"async({inner.name})"

    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        super().reset(ctx, rng)
        self.inner.reset(ctx, rng)

    def step(self, step_no: int, player: int, view: BillboardView) -> int:
        probes = self.inner.choose_probes(
            0, np.array([player], dtype=np.int64), view
        )
        return int(probes[0])

    def info(self) -> Dict[str, Any]:
        return self.inner.info()


@dataclass
class AsyncRunMetrics:
    """Outcome of one asynchronous run.

    ``satisfied_step`` is the step at which each player first probed a
    ground-truth good object (-1 = never); individual cost is per-player
    ``probes``. ``steps`` counts basic steps (n steps ~ one synchronous
    round under round robin).
    """

    honest_mask: np.ndarray
    probes: np.ndarray
    satisfied_step: np.ndarray
    steps: int
    all_honest_satisfied: bool
    strategy_info: Dict[str, Any] = field(default_factory=dict)
    fault_info: Dict[str, Any] = field(default_factory=dict)

    @property
    def honest_probes(self) -> np.ndarray:
        return self.probes[self.honest_mask]

    @property
    def mean_individual_probes(self) -> float:
        return float(self.honest_probes.mean())

    @property
    def max_individual_probes(self) -> int:
        return int(self.honest_probes.max())

    @property
    def total_honest_probes(self) -> int:
        """The prior work's *total cost* metric (O(1/β + n log n) in [1])."""
        return int(self.honest_probes.sum())

    def probes_of(self, player: int) -> int:
        return int(self.probes[player])


class AsynchronousEngine:
    """Run an async strategy under a (possibly adversarial) schedule."""

    def __init__(
        self,
        instance: Instance,
        strategy: AsyncStrategy,
        schedule: Optional[Schedule] = None,
        adversary: Optional["Adversary"] = None,
        value_model: Optional[ValueModel] = None,
        rng: Optional[np.random.Generator] = None,
        schedule_rng: Optional[np.random.Generator] = None,
        adversary_rng: Optional[np.random.Generator] = None,
        max_steps: int = 10_000_000,
        strict: bool = True,
        vote_mode: VoteMode = VoteMode.SINGLE,
        fault_injector: Optional["FaultInjector"] = None,
        obs: Optional["Registry"] = None,
    ) -> None:
        self.instance = instance
        self.strategy = strategy
        self.schedule = schedule or RoundRobinSchedule()
        #: Byzantine controller of the dishonest players; it acts after
        #: every step with the full board (its posts are stamped with the
        #: current step, like everything else)
        self.adversary = adversary
        self.value_model = value_model or TrueValueModel(instance.space)
        self.rng = (
            rng
            if rng is not None
            else np.random.default_rng()  # repro: noqa=RPL003(unseeded interactive default; seeded callers pass explicit streams)
        )
        self.schedule_rng = (
            schedule_rng
            if schedule_rng is not None
            else np.random.default_rng()  # repro: noqa=RPL003(unseeded interactive default; seeded callers pass explicit streams)
        )
        self.adversary_rng = (
            adversary_rng
            if adversary_rng is not None
            else np.random.default_rng()  # repro: noqa=RPL003(unseeded interactive default; seeded callers pass explicit streams)
        )
        self.max_steps = max_steps
        self.strict = strict
        #: optional infrastructure-fault layer; rates are interpreted
        #: per basic *step* here (per round on the synchronous engine),
        #: and ``restart_after`` counts steps
        self.fault_injector = fault_injector
        #: optional event-counter registry (``async.*`` names; counters
        #: only — no clock reads in ``sim`` — and bit-inert)
        self.obs = obs
        self._dishonest_set = set(int(p) for p in instance.dishonest_ids)
        self.ctx = StrategyContext(
            n=instance.n,
            m=instance.m,
            alpha=instance.alpha,
            beta=instance.beta,
            good_threshold=instance.space.good_threshold,
        )
        self.board = Billboard(instance.n, instance.m, vote_mode=vote_mode)

    def run(self) -> AsyncRunMetrics:
        inst = self.instance
        probes = np.zeros(inst.n, dtype=np.int64)
        satisfied_step = np.full(inst.n, -1, dtype=np.int64)
        active = inst.honest_mask.copy()

        faults = self.fault_injector
        value_model = self.value_model
        #: step at which each crashed player restarts (-1: not down)
        down_until = np.full(inst.n, -1, dtype=np.int64)
        if faults is not None:
            faults.reset()
            value_model = faults.wrap_value_model(value_model)

        self.strategy.reset(self.ctx, self.rng)
        self.schedule.reset(inst.n, self.schedule_rng)
        if self.adversary is not None:
            self.adversary.reset(inst, self.adversary_rng)

        obs = self.obs
        if obs is not None:
            count_steps = obs.counter("async.steps").add
            count_probes = obs.counter("async.probes").add
            count_votes = obs.counter("async.votes").add

        step_no = 0
        while step_no < self.max_steps:
            if faults is not None:
                for entry in faults.due_posts(step_no):
                    self.board.append(step_no, *entry)
                restarts = np.flatnonzero(down_until == step_no)
                if restarts.size:
                    down_until[restarts] = -1
                    active[restarts] = True
                    faults.note_restarts(restarts)
                    for player in restarts:
                        self.strategy.on_player_restart(step_no, int(player))
            active_ids = np.flatnonzero(active)
            if active_ids.size == 0:
                if not (down_until >= 0).any():
                    break
                # everyone is down awaiting restart; the step idles
                step_no += 1
                continue
            if obs is not None:
                count_steps()
            player = self.schedule.next_player(step_no, active_ids)
            if not active[player]:
                raise SimulationError(
                    f"schedule {self.schedule.name!r} picked inactive "
                    f"player {player}"
                )
            if faults is not None:
                crashed = faults.crash_coins(
                    step_no, np.array([player], dtype=np.int64)
                )
                if crashed.size:
                    active[player] = False
                    if faults.plan.restart_after is not None:
                        down_until[player] = (
                            step_no + faults.plan.restart_after
                        )
                    if self.adversary is not None:
                        self._adversary_step(step_no)
                    step_no += 1
                    continue
            # async steps are atomic: the player sees everything so far
            view = BillboardView(self.board)
            target = self.strategy.step(step_no, player, view)
            if target >= 0:
                if target >= inst.m:
                    raise SimulationError(
                        f"strategy {self.strategy.name!r} probed unknown "
                        f"object {target}"
                    )
                if obs is not None:
                    count_probes()
                value = value_model.observe(player, target)
                probes[player] += 1
                if inst.space.good_mask[target] and satisfied_step[player] < 0:
                    satisfied_step[player] = step_no
                vote, halt = self.strategy.handle_result(
                    step_no, player, target, value
                )
                if vote:
                    if obs is not None:
                        count_votes()
                    entry = (player, target, value, PostKind.VOTE)
                    if faults is None:
                        delivered = [entry]
                    else:
                        delivered, _dropped, _delayed = faults.filter_posts(
                            step_no, [entry]
                        )
                    for post in delivered:
                        self.board.append(step_no, *post)
                if halt:
                    active[player] = False
                    down_until[player] = -1
            if self.adversary is not None:
                self._adversary_step(step_no)
            step_no += 1
        else:
            if self.strict:
                raise BudgetExceededError(
                    f"async run exceeded {self.max_steps} steps"
                )

        sat_honest = satisfied_step[inst.honest_mask] >= 0
        return AsyncRunMetrics(
            honest_mask=inst.honest_mask.copy(),
            probes=probes,
            satisfied_step=satisfied_step,
            steps=step_no,
            all_honest_satisfied=bool(sat_honest.all()),
            strategy_info=self.strategy.info(),
            fault_info=faults.info() if faults is not None else {},
        )

    def _adversary_step(self, step_no: int) -> None:
        """The adversary's turn after a basic step, identities validated."""
        full_view = BillboardView(self.board)
        for action in self.adversary.act(step_no, full_view):
            if int(action.player) not in self._dishonest_set:
                raise SimulationError(
                    f"adversary {self.adversary.name!r} posted as "
                    f"player {action.player}, which it does not "
                    "control"
                )
            self.board.append(
                step_no,
                int(action.player),
                int(action.object_id),
                float(action.claimed_value),
                action.kind,
            )
