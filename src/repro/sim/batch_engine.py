"""The batched synchronous engine: K independent trials per round loop.

The experiment suite's unit of work is thousands of *independent* trials
of the same small world. The scalar :class:`~repro.sim.engine.SynchronousEngine`
pays the full Python round-loop overhead once per trial; this engine pays
it once per *batch*, advancing ``K`` trials — *lanes* — in lockstep:

* per-lane state (``probes``, ``paid``, ``satisfied_round``,
  ``halted_round``, ``active``) lives in ``(K, n)`` arrays, updated with
  one vectorized scatter per round across every lane at once;
* each lane draws its honest and adversary coins from its own pinned
  per-trial rng stream, in the *exact* order the scalar engine would —
  so each lane's randomness is bit-identical to a scalar run of that
  trial;
* each lane has its own columnar billboard
  (:class:`~repro.billboard.lanes.LaneBoard`) sharing the scalar
  ledger's effectiveness rules as code;
* finished lanes are masked out, not removed — remaining lanes keep
  their indices, and the loop ends when every lane is done.

Equivalence contract (enforced by ``tests/sim/test_batch_equivalence.py``):
for every supported configuration, the per-trial :class:`RunMetrics`
produced here are **identical** — field for field, array for array — to
running each lane through the scalar engine. Batching is a wall-clock
optimization only; it is never allowed to be a semantics change.

Fault injection is batch-native: a
:class:`~repro.faults.batched.BatchedFaultInjector` carries one scalar
injector per lane (each on its pinned spare stream) and applies lossy
and delayed posts, churn restarts, and observation noise with the same
``(K, n)`` scatter discipline as the rest of the engine — in the scalar
engine's exact per-round order, so faulted lanes stay bit-identical to
faulted scalar runs. Lanes may carry *different* fault plans, which is
what lets the runner pack whole sweep grids into one batch. The only
remaining unsupported configuration is structured tracing (deeply
per-trial); :func:`batch_fallback_reason` reports it so the runner can
degrade to the scalar engine with a warning.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

import numpy as np

from repro.billboard.lanes import LaneBillboard
from repro.billboard.post import PostKind
from repro.billboard.sparse import choose_substrate
from repro.billboard.views import BillboardView
from repro.errors import (
    AdversaryViolationError,
    BudgetExceededError,
    ConfigurationError,
    SimulationError,
)
from repro.faults.plan import FaultPlan
from repro.sim.engine import EngineConfig
from repro.sim.metrics import RunMetrics
from repro.strategies.base import StrategyContext
from repro.strategies.batched import BatchedStrategy
from repro.world.instance import Instance
from repro.world.playerstate import player_array
from repro.world.valuemodel import TrueValueModel, ValueModel

if TYPE_CHECKING:  # imported lazily to avoid a package-level cycle
    from repro.adversaries.batched import BatchedAdversary
    from repro.faults.batched import BatchedFaultInjector
    from repro.obs.registry import Registry


def batch_fallback_reason(
    config: Optional[EngineConfig], fault_plan: Optional[FaultPlan]
) -> Optional[str]:
    """Why a configuration cannot run on the batched engine (or ``None``).

    The runner consults this before grouping trials into lanes; the one
    remaining unsupported configuration — structured tracing — degrades
    to the scalar engine (same results, no batching win). Fault plans
    batch natively (``fault_plan`` is accepted for signature stability
    and the day a plan grows a per-trial-only knob).
    """
    del fault_plan  # every plan batches; see BatchedFaultInjector
    if config is not None and config.trace:
        return "structured traces are per-trial"
    return None


class BatchedEngine:
    """Runs ``K`` independent trials of one protocol in lockstep.

    Parameters
    ----------
    instances:
        One world per lane. All lanes must share ``(n, m)`` — lockstep
        needs a common state shape (experiment cells satisfy this by
        construction: same cell, different seeds).
    strategy:
        A :class:`~repro.strategies.batched.BatchedStrategy` holding the
        per-lane protocol state.
    adversary:
        A :class:`~repro.adversaries.batched.BatchedAdversary`, or
        ``None`` for silent dishonest players.
    value_models:
        Optional per-lane observation models; defaults to ground truth
        per lane, like the scalar engine.
    rngs / adversary_rngs:
        Per-lane generator streams (the pinned per-trial streams).
    ctxs:
        Optional per-lane :class:`StrategyContext` overrides.
    faults:
        Optional :class:`~repro.faults.batched.BatchedFaultInjector`
        carrying one scalar injector per lane (each on its own pinned
        fault stream). ``None`` — the default — leaves every code path
        byte-identical to the fault-free engine; lanes whose injector
        slot is ``None`` run fault-free inside a faulted batch.
    obs:
        Optional :class:`~repro.obs.registry.Registry` the run increments
        ``batch.*`` event counters into. Counters only (no clock reads in
        ``sim``); results are bit-identical with or without it.
    substrate:
        Ledger storage selection per lane board — ``"dense"``,
        ``"sparse"``, or ``"auto"``/``None`` (sparse at or above
        :data:`~repro.billboard.sparse.SPARSE_AUTO_THRESHOLD` players).
        Bit-inert; the batched engine never traces, so no fallback
        exists on this path.
    """

    def __init__(
        self,
        instances: Sequence[Instance],
        strategy: BatchedStrategy,
        adversary: Optional["BatchedAdversary"] = None,
        value_models: Optional[Sequence[ValueModel]] = None,
        rngs: Optional[Sequence[np.random.Generator]] = None,
        adversary_rngs: Optional[Sequence[np.random.Generator]] = None,
        config: Optional[EngineConfig] = None,
        ctxs: Optional[Sequence[Optional[StrategyContext]]] = None,
        faults: Optional["BatchedFaultInjector"] = None,
        obs: Optional["Registry"] = None,
        substrate: Optional[str] = None,
    ) -> None:
        if not instances:
            raise ConfigurationError("BatchedEngine needs at least one lane")
        shape = (instances[0].n, instances[0].m)
        for inst in instances:
            if (inst.n, inst.m) != shape:
                raise ConfigurationError(
                    "all lanes must share (n, m); got "
                    f"{(inst.n, inst.m)} alongside {shape}"
                )
        self.instances = list(instances)
        self.n_lanes = len(self.instances)
        self.strategy = strategy
        self.adversary = adversary
        self.config = config or EngineConfig()
        if self.config.trace:
            raise ConfigurationError(
                "BatchedEngine does not support structured traces; "
                "use the scalar engine"
            )
        self.rngs = (
            list(rngs)
            if rngs is not None
            else [
                np.random.default_rng()  # repro: noqa=RPL003(unseeded interactive default; the runner always passes pinned per-lane streams)
                for _ in self.instances
            ]
        )
        self.adversary_rngs = (
            list(adversary_rngs)
            if adversary_rngs is not None
            else [
                np.random.default_rng()  # repro: noqa=RPL003(unseeded interactive default; the runner always passes pinned per-lane streams)
                for _ in self.instances
            ]
        )
        self.value_models = (
            list(value_models)
            if value_models is not None
            else [TrueValueModel(inst.space) for inst in self.instances]
        )
        self.ctxs = [
            (ctx if ctx is not None else self._default_ctx(inst))
            for inst, ctx in zip(
                self.instances,
                ctxs if ctxs is not None else [None] * self.n_lanes,
            )
        ]
        self.substrate = choose_substrate(substrate, shape[0])
        self.boards = LaneBillboard(
            self.n_lanes,
            shape[0],
            shape[1],
            vote_mode=self.config.vote_mode,
            max_votes_per_player=self.config.max_votes_per_player,
            substrate=self.substrate,
        )
        if faults is not None and faults.n_lanes != self.n_lanes:
            raise ConfigurationError(
                f"fault injector carries {faults.n_lanes} lanes for a "
                f"{self.n_lanes}-lane engine"
            )
        self.faults = faults
        self.obs = obs

    @staticmethod
    def _default_ctx(instance: Instance) -> StrategyContext:
        return StrategyContext(
            n=instance.n,
            m=instance.m,
            alpha=instance.alpha,
            beta=instance.beta,
            good_threshold=instance.space.good_threshold,
        )

    # ------------------------------------------------------------------
    def run(self) -> List[RunMetrics]:
        """Advance all lanes to completion; return per-lane metrics."""
        K = self.n_lanes
        n, m = self.instances[0].n, self.instances[0].m
        good = np.stack([inst.space.good_mask for inst in self.instances])
        costs = np.stack([inst.space.costs for inst in self.instances])

        probes = np.zeros((K, n), dtype=np.int64)
        paid = np.zeros((K, n), dtype=np.float64)
        satisfied_round = player_array((K, n), -1, np.int64)
        halted_round = player_array((K, n), -1, np.int64)
        alive = np.ones(K, dtype=bool)
        rounds_out = np.zeros(K, dtype=np.int64)

        faults = self.faults
        value_models = self.value_models
        if faults is not None:
            # Faulted lanes keep the (K, n) mask representation: the
            # batched injector scatters crashes/restarts into the shared
            # masks directly, so the engine cannot maintain incremental
            # id sets without re-deriving them anyway.
            active = np.stack(
                [inst.honest_mask.copy() for inst in self.instances]
            )
            #: round at which each crashed player restarts (-1: not down)
            down_until = player_array((K, n), -1, np.int64)
            lane_active_ids: List[np.ndarray] = []
            faults.reset()
            value_models = faults.wrap_value_models(value_models)
        else:
            # Fault-free lanes track sorted active id arrays maintained
            # incrementally (halts are the only membership change), so a
            # round costs O(players that act), not O(K * n). The ids are
            # bit-identical to the flatnonzero scans they replace.
            active = None
            down_until = None
            lane_active_ids = [
                inst.honest_ids.copy() for inst in self.instances
            ]

        self.strategy.reset_lanes(self.ctxs, self.rngs)
        if self.adversary is not None:
            self.adversary.reset_lanes(self.instances, self.adversary_rngs)

        obs = self.obs
        if obs is not None:
            obs.counter("batch.runs").add()
            obs.counter("batch.lanes").add(K)
            obs.counter(f"substrate.{self.substrate}").add(K)
            count_rounds = obs.counter("batch.rounds").add
            count_lane_rounds = obs.counter("batch.lane_rounds").add
            count_probes = obs.counter("batch.probes").add

        record_reports = self.config.record_reports
        round_no = 0
        while round_no < self.config.max_rounds:
            if not alive.any():
                break
            if faults is not None:
                # Round-start fault effects land before the stop checks,
                # like the scalar engine: due posts are delivered at a
                # lane's final round, and restarts can revive a lane
                # whose every player is down.
                faults.round_start(
                    round_no, alive, active, down_until, self.boards,
                    self.strategy,
                )
            # Stop checks, in the scalar engine's order: all-halted
            # (with nobody pending a restart) first, then the strategy's
            # own termination rule.
            lanes: List[int] = []
            for k in np.flatnonzero(alive):
                k = int(k)
                if faults is not None:
                    done = (
                        not active[k].any()
                        and not (down_until[k] >= 0).any()
                    )
                else:
                    done = lane_active_ids[k].size == 0
                if done:
                    alive[k] = False
                    rounds_out[k] = round_no
                elif self.strategy.finished(k, round_no):
                    alive[k] = False
                    rounds_out[k] = round_no
                else:
                    lanes.append(k)
            if not lanes:
                break
            if obs is not None:
                count_rounds()
                count_lane_rounds(len(lanes))

            if faults is not None:
                # crashes land before probing: a player crashing in
                # round r does not probe in round r
                faults.apply_crashes(
                    round_no, lanes, active, halted_round, down_until
                )
                # lanes with every player down idle this round: no
                # strategy calls, but the adversary still acts and the
                # round still counts (the scalar engine's idle path)
                probe_lanes = [k for k in lanes if active[k].any()]
                actives = [np.flatnonzero(active[k]) for k in probe_lanes]
            else:
                probe_lanes = lanes
                actives = [lane_active_ids[k] for k in probe_lanes]
            views = [
                BillboardView(self.boards.lane(k), before_round=round_no)
                for k in probe_lanes
            ]
            raw_choices = self.strategy.choose_probes_batch(
                round_no, probe_lanes, actives, views
            )

            probing_lanes: List[int] = []
            probers_per_lane: List[np.ndarray] = []
            targets_per_lane: List[np.ndarray] = []
            values_per_lane: List[np.ndarray] = []
            for k, active_ids, choices in zip(
                probe_lanes, actives, raw_choices
            ):
                choices = np.asarray(choices, dtype=np.int64)
                if choices.shape != active_ids.shape:
                    raise SimulationError(
                        f"strategy {self.strategy.name!r} returned "
                        f"{choices.shape} probes for {active_ids.shape} players"
                    )
                probing = choices >= 0
                probers = active_ids[probing]
                targets = choices[probing]
                if targets.size and (targets >= m).any():
                    raise SimulationError(
                        f"strategy {self.strategy.name!r} probed an unknown object"
                    )
                if probers.size:
                    probing_lanes.append(k)
                    probers_per_lane.append(probers)
                    targets_per_lane.append(targets)
                    values_per_lane.append(
                        value_models[k].observe_many(probers, targets)
                    )

            if probing_lanes:
                # One cross-lane scatter for the whole batch: (lane,
                # player) pairs are unique within a round, so fancy-index
                # += is exact.
                lane_idx = np.repeat(
                    np.array(probing_lanes, dtype=np.int64),
                    [p.size for p in probers_per_lane],
                )
                flat_probers = np.concatenate(probers_per_lane)
                flat_targets = np.concatenate(targets_per_lane)
                if obs is not None:
                    count_probes(int(flat_probers.size))
                probes[lane_idx, flat_probers] += 1
                paid[lane_idx, flat_probers] += costs[lane_idx, flat_targets]
                newly_good = good[lane_idx, flat_targets] & (
                    satisfied_round[lane_idx, flat_probers] < 0
                )
                satisfied_round[
                    lane_idx[newly_good], flat_probers[newly_good]
                ] = round_no

                results = self.strategy.handle_results_batch(
                    round_no,
                    probing_lanes,
                    probers_per_lane,
                    targets_per_lane,
                    values_per_lane,
                )
                for k, probers, targets, values, (vote_mask, halt_mask) in zip(
                    probing_lanes,
                    probers_per_lane,
                    targets_per_lane,
                    values_per_lane,
                    results,
                ):
                    vote_mask = np.asarray(vote_mask, dtype=bool)
                    halt_mask = np.asarray(halt_mask, dtype=bool)
                    board = self.boards.lane(k)
                    if vote_mask.any():
                        v_players = probers[vote_mask]
                        v_objects = targets[vote_mask]
                        v_values = values[vote_mask]
                        if faults is not None:
                            v_players, v_objects, v_values = (
                                faults.filter_block(
                                    k,
                                    round_no,
                                    v_players,
                                    v_objects,
                                    v_values,
                                    PostKind.VOTE,
                                )
                            )
                        if v_players.size:
                            board.post_block(
                                round_no,
                                v_players,
                                v_objects,
                                v_values,
                                PostKind.VOTE,
                            )
                    if record_reports and (~vote_mask).any():
                        r_players = probers[~vote_mask]
                        r_objects = targets[~vote_mask]
                        r_values = values[~vote_mask]
                        if faults is not None:
                            r_players, r_objects, r_values = (
                                faults.filter_block(
                                    k,
                                    round_no,
                                    r_players,
                                    r_objects,
                                    r_values,
                                    PostKind.REPORT,
                                )
                            )
                        if r_players.size:
                            board.post_block(
                                round_no,
                                r_players,
                                r_objects,
                                r_values,
                                PostKind.REPORT,
                            )
                    halters = probers[halt_mask]
                    if faults is not None:
                        active[k, halters] = False
                        # a halted player can no longer be pending restart
                        down_until[k, halters] = -1
                    elif halters.size:
                        lane_active_ids[k] = np.setdiff1d(
                            lane_active_ids[k], halters, assume_unique=True
                        )
                    halted_round[k, halters] = round_no

            if self.adversary is not None:
                for k in lanes:
                    self._adversary_turn(k, round_no)

            round_no += 1
        else:
            if alive.any() and self.config.strict:
                raise BudgetExceededError(
                    f"run exceeded {self.config.max_rounds} rounds "
                    f"(strategy={self.strategy.name!r})"
                )
            rounds_out[alive] = round_no

        if obs is not None and faults is not None:
            for key, value in faults.info_total().items():
                obs.counter(f"faults.{key}").add(int(value))

        return [
            self._lane_metrics(
                k, probes, paid, satisfied_round, halted_round, rounds_out
            )
            for k in range(K)
        ]

    # ------------------------------------------------------------------
    def _adversary_turn(self, lane: int, round_no: int) -> None:
        board = self.boards.lane(lane)
        full_view = BillboardView(board, before_round=None)
        actions = self.adversary.act(lane, round_no, full_view)
        if not actions:
            return
        honest = self.instances[lane].honest_mask
        entries = []
        for action in actions:
            player = int(action.player)
            if not (0 <= player < honest.size) or honest[player]:
                raise AdversaryViolationError(
                    f"adversary {self.adversary.name!r} tried to post as "
                    f"player {action.player}, which it does not control"
                )
            entries.append(
                (
                    player,
                    int(action.object_id),
                    float(action.claimed_value),
                    action.kind,
                )
            )
        board.post_entries(round_no, entries)

    def _lane_metrics(
        self,
        k: int,
        probes: np.ndarray,
        paid: np.ndarray,
        satisfied_round: np.ndarray,
        halted_round: np.ndarray,
        rounds_out: np.ndarray,
    ) -> RunMetrics:
        inst = self.instances[k]
        sat_honest = satisfied_round[k][inst.honest_mask] >= 0
        # np.array (not .copy()) detaches each lane row into a plain
        # in-memory ndarray even when the (K, n) state is memmap-backed
        # (see repro.world.playerstate), so metrics never reference an
        # engine-lifetime temp-file mapping.
        return RunMetrics(
            honest_mask=inst.honest_mask.copy(),
            probes=np.array(probes[k]),
            paid=np.array(paid[k]),
            satisfied_round=np.array(satisfied_round[k]),
            halted_round=np.array(halted_round[k]),
            rounds=int(rounds_out[k]),
            all_honest_satisfied=bool(sat_honest.all()),
            strategy_info=self.strategy.info(k),
            fault_info=(
                self.faults.info(k) if self.faults is not None else {}
            ),
            trace=None,
        )
