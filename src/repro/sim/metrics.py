"""Per-run outcome records and their summary statistics.

Theorem 4 is stated in *rounds until termination*; the lower bounds are
stated in *probes*. Under unit costs the two differ only by idle advice
rounds, so :class:`RunMetrics` tracks rounds, probes, and monetary cost
separately and lets each experiment report the quantity its theorem names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Optional

import numpy as np

if TYPE_CHECKING:  # type-only: metrics must not import the trace module
    from repro.sim.trace import Trace


@dataclass
class RunMetrics:
    """Everything measured about one engine run.

    Attributes
    ----------
    honest_mask:
        Copy of the instance's role assignment.
    probes:
        Shape ``(n,)``; number of probes made by each player (honest
        players only — dishonest probes are not mediated by the engine and
        read 0).
    paid:
        Shape ``(n,)``; total object cost paid (equals ``probes`` in the
        unit-cost model).
    satisfied_round:
        Shape ``(n,)``; the round in which the player first probed a
        ground-truth good object, or ``-1`` if it never did. "Termination
        time" of a player in the sense of Theorem 4 is
        ``satisfied_round + 1`` rounds.
    halted_round:
        Shape ``(n,)``; the round the player stopped probing (with local
        testing this equals ``satisfied_round``), ``-1`` if still active
        when the run ended.
    rounds:
        Total rounds executed.
    all_honest_satisfied:
        Whether every honest player found a good object.
    strategy_info:
        Free-form diagnostics exported by the strategy (e.g. DISTILL's
        ATTEMPT count and candidate-set trajectory).
    fault_info:
        Realized fault counts (drops, delays, crashes, restarts) when the
        run was driven with a :class:`~repro.faults.injector.FaultInjector`;
        empty for clean runs.
    trace:
        The run's structured event log when ``EngineConfig(trace=True)``,
        else ``None``. Carried here so traced runs survive the trial
        runner's process pool (``keep_metrics=True``).
    """

    honest_mask: np.ndarray
    probes: np.ndarray
    paid: np.ndarray
    satisfied_round: np.ndarray
    halted_round: np.ndarray
    rounds: int
    all_honest_satisfied: bool
    strategy_info: Dict[str, Any] = field(default_factory=dict)
    fault_info: Dict[str, Any] = field(default_factory=dict)
    trace: Optional["Trace"] = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return int(self.honest_mask.shape[0])

    @property
    def honest_probes(self) -> np.ndarray:
        """Probe counts of the honest players."""
        return self.probes[self.honest_mask]

    @property
    def honest_paid(self) -> np.ndarray:
        """Payments of the honest players."""
        return self.paid[self.honest_mask]

    @property
    def honest_termination_rounds(self) -> np.ndarray:
        """Rounds until each honest player was satisfied.

        Unsatisfied players are charged the full run length — a pessimistic
        convention that can only weaken measured upper bounds.
        """
        sat = self.satisfied_round[self.honest_mask]
        out = np.where(sat >= 0, sat + 1, self.rounds)
        return out.astype(np.int64)

    @property
    def mean_individual_probes(self) -> float:
        """Average probes per honest player — the paper's individual cost."""
        return float(self.honest_probes.mean())

    @property
    def mean_individual_rounds(self) -> float:
        """Average termination round per honest player (Theorem 4 metric)."""
        return float(self.honest_termination_rounds.mean())

    @property
    def max_individual_rounds(self) -> int:
        """Last honest player's termination round (Theorem 11 metric)."""
        return int(self.honest_termination_rounds.max())

    @property
    def mean_individual_paid(self) -> float:
        """Average payment per honest player (Theorem 12 metric)."""
        return float(self.honest_paid.mean())

    @property
    def satisfied_fraction(self) -> float:
        """Fraction of honest players that found a good object."""
        sat = self.satisfied_round[self.honest_mask]
        return float((sat >= 0).mean())

    def summary(self) -> Dict[str, float]:
        """Compact dictionary used by the trial runner."""
        return {
            "rounds": float(self.rounds),
            "mean_individual_probes": self.mean_individual_probes,
            "mean_individual_rounds": self.mean_individual_rounds,
            "max_individual_rounds": float(self.max_individual_rounds),
            "mean_individual_paid": self.mean_individual_paid,
            "satisfied_fraction": self.satisfied_fraction,
            "all_honest_satisfied": float(self.all_honest_satisfied),
        }
