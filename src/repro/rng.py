"""Randomness plumbing.

All stochastic components of the library draw from :class:`numpy.random.Generator`
objects produced here. The design goals are:

* **Reproducibility** — a single integer seed determines an entire experiment,
  including every player's coin flips across every trial.
* **Independence** — distinct components (honest cohort, adversary, world
  generation, separate trials) receive *statistically independent* streams,
  derived through :class:`numpy.random.SeedSequence` spawning rather than
  ad-hoc seed arithmetic.

The paper's adaptive adversary is allowed to observe *past* coin flips but
never future ones (Section 2.3). Giving the adversary its own stream, plus
read access to realized history through the billboard, implements exactly
that information structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

import numpy as np

SeedLike = Union[int, Sequence[int], np.random.SeedSequence, None]


def make_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Normalize ``seed`` into a :class:`numpy.random.SeedSequence`."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def make_generator(seed: SeedLike = None) -> np.random.Generator:
    """Create a PCG64 generator from any accepted seed form."""
    return np.random.Generator(np.random.PCG64(make_seed_sequence(seed)))


@dataclass
class RngFactory:
    """A spawnable source of independent random generators.

    A factory wraps one :class:`~numpy.random.SeedSequence` and hands out
    children deterministically. Two factories built from the same seed yield
    identical generator streams in the same spawn order, which is the
    property the engine's determinism tests rely on.

    Example
    -------
    >>> factory = RngFactory.from_seed(7)
    >>> honest_rng = factory.spawn_generator()
    >>> adversary_rng = factory.spawn_generator()
    """

    seed_sequence: np.random.SeedSequence
    _spawned: int = field(default=0, repr=False)

    @classmethod
    def from_seed(cls, seed: SeedLike = None) -> "RngFactory":
        return cls(make_seed_sequence(seed))

    def spawn_sequence(self) -> np.random.SeedSequence:
        """Return the next independent child seed sequence."""
        child = self.seed_sequence.spawn(self._spawned + 1)[self._spawned]
        self._spawned += 1
        return child

    def spawn_generator(self) -> np.random.Generator:
        """Return a generator seeded by the next child sequence."""
        return np.random.Generator(np.random.PCG64(self.spawn_sequence()))

    def spawn_factory(self) -> "RngFactory":
        """Return an independent child factory (e.g. one per trial)."""
        return RngFactory(self.spawn_sequence())

    def trial_factories(self, count: int) -> Iterator["RngFactory"]:
        """Yield ``count`` independent child factories, one per trial."""
        for _ in range(count):
            yield self.spawn_factory()


def choice_or_none(
    rng: np.random.Generator, pool: np.ndarray
) -> Optional[int]:
    """Uniformly pick one element of ``pool``, or ``None`` when empty."""
    if pool.size == 0:
        return None
    return int(pool[rng.integers(pool.size)])
