"""Concentration bounds used by the analysis and by test tolerances.

The paper's Lemmas 8 and 10 bound failure probabilities with the standard
multiplicative Chernoff bound for the lower tail:

    P[X < (1 - δ)·E[X]] < exp(-δ²·E[X]/2),

instantiated at ``δ = 1/2`` (votes falling below half their expectation),
giving ``exp(-E[X]/8)``. Tests use these to pick seeds-independent
tolerances: an assertion allowed to fail with probability ``p`` under the
theory can be given ``1/p`` head-room.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def chernoff_below_half_mean(expectation: float) -> float:
    """``P[X < E[X]/2] < exp(-E[X]/8)`` for sums of independent 0/1
    variables (the form used in Lemmas 8 and 10)."""
    if expectation < 0:
        raise ConfigurationError(
            f"expectation must be non-negative, got {expectation}"
        )
    return math.exp(-expectation / 8.0)


def chernoff_lower_tail(expectation: float, delta: float) -> float:
    """General multiplicative lower tail ``P[X < (1-δ)E[X]]``."""
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must be in (0, 1), got {delta}")
    if expectation < 0:
        raise ConfigurationError(
            f"expectation must be non-negative, got {expectation}"
        )
    return math.exp(-delta * delta * expectation / 2.0)


def markov_tail(expectation: float, threshold: float) -> float:
    """Markov: ``P[X >= threshold] <= E[X]/threshold`` for ``X >= 0``."""
    if threshold <= 0:
        raise ConfigurationError(
            f"threshold must be positive, got {threshold}"
        )
    if expectation < 0:
        raise ConfigurationError(
            f"expectation must be non-negative, got {expectation}"
        )
    return min(1.0, expectation / threshold)
