"""Scaling-law fits.

The reproduction contract is about *shape*: DISTILL's cost should grow
like ``log n / Δ`` while the prior algorithm's grows like ``log n``, the
ε-sweep of Corollary 5 should fit ``1/ε``, and so on. These helpers fit a
single scale factor (bounds are stated up to a constant) or a power law,
and report goodness of fit so benches and tests can compare hypotheses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class PowerLawFit:
    """``y ≈ coefficient · x^exponent``."""

    exponent: float
    coefficient: float
    r2: float


def r_squared(y: np.ndarray, y_hat: np.ndarray) -> float:
    """Coefficient of determination of predictions ``y_hat``."""
    y = np.asarray(y, dtype=np.float64)
    y_hat = np.asarray(y_hat, dtype=np.float64)
    ss_res = float(((y - y_hat) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log y = a·log x + b``."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.size != y.size or x.size < 2:
        raise ConfigurationError("fit_power_law needs >= 2 paired points")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ConfigurationError("power-law fits need positive data")
    slope, intercept = np.polyfit(np.log(x), np.log(y), 1)
    y_hat = np.exp(intercept) * x ** slope
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        r2=r_squared(np.log(y), np.log(y_hat)),
    )


def fit_scale_factor(
    measured: Sequence[float], predicted: Sequence[float]
) -> float:
    """Best single constant ``c`` with ``measured ≈ c · predicted``.

    Least squares through the origin — the right comparison for bounds
    stated up to a hidden constant.
    """
    measured = np.asarray(measured, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if measured.size != predicted.size or measured.size == 0:
        raise ConfigurationError("fit_scale_factor needs paired points")
    denom = float((predicted ** 2).sum())
    if denom == 0:
        raise ConfigurationError("predicted values are all zero")
    return float((measured * predicted).sum() / denom)
