"""Worst-case kernel of Lemma 7's iteration arithmetic.

At simulable scales, full DISTILL runs rarely exercise the while loop:
the PROBE&SEEKADVICE cascade (Lemma 6) satisfies most honest players
already during Step 1.3, and with n <= ~10^4 the loop terminates in 0-2
iterations (bench E5 reports the measured engine numbers for honesty).
The *combinatorial content* of Lemma 7, however, is a statement about
vote budgets that can be reproduced exactly at any n:

    keeping a bad object in C_{t+1} costs > n/(4 c_t) fresh dishonest
    votes in iteration t, the total dishonest budget is (1-α)n, and the
    good object always survives (Lemma 10 gives it n/(2 c_t) expected
    honest votes w.h.p.) — so however the adversary splits its budget,
    the loop runs O(log n / Δ) iterations.

:func:`worst_case_iterations` searches the adversary's side of that game
for the schedule maximizing the number of iterations. Keeping ``c_t``
candidates alive out of ``c_{t-1}`` costs ``~(c_t-1)·n/(4·c_{t-1})``
votes, so per-iteration cost is ``~r·n/4`` for decay ratio ``r`` — the
extremal schedule of the proof decays the candidate set geometrically
(greedy all-in collapses in 2 iterations; one-at-a-time costs ``n/8``
per iteration and affords only ``O(1-α)`` of them). The kernel scans
the geometric family the proof's Means-Inequality step shows is
extremal, plus its endpoint variants, and returns the best. It is a
deterministic recurrence, so it scales to n = 2^30 and exposes the
sub-logarithmic ``log n/Δ`` growth that engine-scale runs cannot reach.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError


@dataclass
class KernelTrace:
    """Outcome of one worst-case splitting game."""

    n: int
    alpha: float
    c0: int
    iterations: int
    candidate_sizes: List[int]
    budget_spent: int


def initial_candidate_count(n: int, alpha: float, k2: float) -> int:
    """Worst-case |C0|: the good object plus every bad object the
    adversary can push past the ``k2/4`` Step 1.4 threshold with half
    its budget (the other half kept for the iterations)."""
    budget = int((1.0 - alpha) * n)
    need = max(1, math.ceil(k2 / 4.0))
    return 1 + (budget // 2) // need


def worst_case_iterations(
    n: int,
    alpha: float,
    k2: float = 8.0,
    c0: int = None,
) -> KernelTrace:
    """Play the optimal budget-splitting game; count while-loop iterations.

    Parameters
    ----------
    n:
        Number of players (the threshold scale of Step 2.2).
    alpha:
        Honest fraction; the adversary's budget is ``(1-α)n`` votes.
    k2:
        Figure 1 constant (sets the worst-case ``|C0|``).
    c0:
        Override the initial candidate count (defaults to the worst case
        reachable through Step 1.4).
    """
    if not 0 < alpha < 1:
        raise ConfigurationError(
            f"the kernel needs 0 < alpha < 1, got {alpha}"
        )
    if n < 2:
        raise ConfigurationError(f"n must be >= 2, got {n}")
    budget = int((1.0 - alpha) * n)
    if c0 is None:
        start = initial_candidate_count(n, alpha, k2)
        budget -= budget // 2  # the other half went into C0
    else:
        start = int(c0)

    best = _play_schedule(n, [start], budget)
    if start > 1:
        # Scan the geometric family c_t = c0^((T-t)/T) over horizons T;
        # feasibility is checked by replaying the schedule against the
        # exact integer thresholds, so the result is an achievable lower
        # bound on the true worst case (and the proof shows this family
        # is extremal up to rounding).
        max_t = max(2, int(4 * math.log2(max(n, 2))))
        for horizon in range(1, max_t + 1):
            sizes = [start]
            for t in range(1, horizon + 1):
                frac = (horizon - t) / horizon
                sizes.append(max(1, math.ceil(start ** frac)))
            trace = _play_schedule(n, sizes, budget)
            if trace.iterations > best.iterations:
                best = trace
    return KernelTrace(
        n=n,
        alpha=alpha,
        c0=start,
        iterations=best.iterations,
        candidate_sizes=best.candidate_sizes,
        budget_spent=best.budget_spent,
    )


def _play_schedule(n: int, targets: List[int], budget: int) -> KernelTrace:
    """Replay a target candidate-size schedule against the exact rules.

    Per iteration the adversary tries to keep ``targets[t]-1`` bad
    candidates alive at ``floor(n/(4·c_{t-1}))+1`` votes apiece (Step
    2.2's strict threshold); when the budget runs short it keeps as many
    as it can still afford. The good object always survives (Lemma 10).
    """
    c = targets[0]
    sizes = [c]
    spent = 0
    iterations = 0
    t = 0
    while c > 1:
        t += 1
        want = targets[t] - 1 if t < len(targets) else 0
        need = math.floor(n / (4.0 * c)) + 1
        keep = min(c - 1, want, budget // need) if want > 0 else 0
        budget -= keep * need
        spent += keep * need
        iterations += 1
        c = keep + 1
        sizes.append(c)
    return KernelTrace(
        n=n,
        alpha=0.0,
        c0=sizes[0],
        iterations=iterations,
        candidate_sizes=sizes,
        budget_spent=spent,
    )
