"""Statistics helpers for Monte-Carlo outputs."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError


def mean_ci(samples: np.ndarray, z: float = 1.96) -> Tuple[float, float]:
    """Sample mean and normal-approximation CI half-width."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ConfigurationError("mean_ci needs at least one sample")
    mean = float(samples.mean())
    if samples.size == 1:
        return mean, 0.0
    half = z * float(samples.std(ddof=1)) / np.sqrt(samples.size)
    return mean, half


def bootstrap_ci(
    samples: np.ndarray,
    rng: np.random.Generator,
    statistic=np.mean,
    n_resamples: int = 1000,
    level: float = 0.95,
) -> Tuple[float, float]:
    """Percentile-bootstrap interval for an arbitrary statistic."""
    samples = np.asarray(samples, dtype=np.float64)
    if samples.size == 0:
        raise ConfigurationError("bootstrap_ci needs at least one sample")
    idx = rng.integers(samples.size, size=(n_resamples, samples.size))
    stats = statistic(samples[idx], axis=1)
    lo = (1.0 - level) / 2.0
    return float(np.quantile(stats, lo)), float(np.quantile(stats, 1.0 - lo))


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> Tuple[float, float]:
    """Wilson score interval for a success rate.

    The normal approximation is useless exactly where the experiments
    need it (success rates at or near 1.0, as in the Theorem 11/13
    w.h.p. claims); Wilson stays honest there.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"need 0 <= successes <= trials, got {successes}/{trials}"
        )
    p_hat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    center = (p_hat + z2 / (2 * trials)) / denom
    half = (
        z
        * np.sqrt(
            p_hat * (1 - p_hat) / trials + z2 / (4 * trials * trials)
        )
        / denom
    )
    return float(max(0.0, center - half)), float(min(1.0, center + half))


def paired_difference(
    a: np.ndarray, b: np.ndarray, z: float = 1.96
) -> Dict[str, float]:
    """Mean and CI of the per-trial difference ``a - b``.

    For paired designs (same worlds and coins, different treatment —
    e.g. ablation A5's adversary comparison): differencing removes the
    shared world variance, so effects far smaller than the per-trial
    spread become resolvable.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape or a.size == 0:
        raise ConfigurationError(
            "paired_difference needs equal-length non-empty samples"
        )
    diff = a - b
    mean, half = mean_ci(diff, z=z)
    return {
        "mean_diff": mean,
        "ci95": half,
        "significant": float(abs(mean) > half),
    }


def summarize(samples: np.ndarray) -> Dict[str, float]:
    """Mean, CI, and the quantiles the benches print."""
    samples = np.asarray(samples, dtype=np.float64)
    mean, half = mean_ci(samples)
    return {
        "mean": mean,
        "ci95": half,
        "median": float(np.median(samples)),
        "p90": float(np.quantile(samples, 0.90)),
        "p99": float(np.quantile(samples, 0.99)),
        "max": float(samples.max()),
        "n": float(samples.size),
    }
