"""Closed-form theory, statistics, and scaling-law fitting.

* :mod:`~repro.analysis.bounds` — the paper's predicted complexities
  (Theorems 1, 2, 4, 11, 12; Corollary 5; Lemma 7), used as reference
  curves in every bench.
* :mod:`~repro.analysis.stats` — means, confidence intervals, bootstrap.
* :mod:`~repro.analysis.fitting` — log-log scaling fits used to compare
  measured growth against ``log n`` vs ``log n / Δ`` etc.
* :mod:`~repro.analysis.concentration` — Chernoff/Markov helpers that set
  statistically principled test tolerances.
"""

from repro.analysis.bounds import (
    async_ec04_expected_rounds,
    cor5_bound,
    delta,
    lemma7_iteration_bound,
    thm1_lower,
    thm2_lower,
    thm4_expected_rounds,
    thm11_rounds,
    thm12_payment_bound,
    trivial_expected_probes,
)
from repro.analysis.stats import (
    bootstrap_ci,
    mean_ci,
    paired_difference,
    summarize,
    wilson_interval,
)
from repro.analysis.card import theory_card, theory_values
from repro.analysis.fitting import fit_power_law, fit_scale_factor, r_squared
from repro.analysis.concentration import (
    chernoff_below_half_mean,
    markov_tail,
)
from repro.analysis.lemma7_kernel import KernelTrace, worst_case_iterations
from repro.analysis.lemma9 import (
    application_a,
    f_sigma,
    g_a,
    lemma9_capped_holds,
    lemma9_holds,
)

__all__ = [
    "KernelTrace",
    "application_a",
    "async_ec04_expected_rounds",
    "bootstrap_ci",
    "chernoff_below_half_mean",
    "f_sigma",
    "g_a",
    "lemma9_capped_holds",
    "lemma9_holds",
    "worst_case_iterations",
    "wilson_interval",
    "theory_values",
    "theory_card",
    "paired_difference",
    "cor5_bound",
    "delta",
    "fit_power_law",
    "fit_scale_factor",
    "lemma7_iteration_bound",
    "markov_tail",
    "mean_ci",
    "r_squared",
    "summarize",
    "thm11_rounds",
    "thm12_payment_bound",
    "thm1_lower",
    "thm2_lower",
    "thm4_expected_rounds",
    "trivial_expected_probes",
]
