"""The paper's complexity bounds as reference curves.

All logarithms are base 2 (the paper leaves the base unspecified; it moves
only constants). Every function returns the bound *without* its hidden
constant — benches fit a single scale factor and then compare shapes, per
the reproduction contract in DESIGN.md.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def _check_unit(name: str, value: float) -> None:
    if not 0 < value <= 1:
        raise ConfigurationError(f"{name} must be in (0, 1], got {value}")


def log2n(n: int) -> float:
    """``log2 n``, floored at 1 to keep tiny-``n`` ratios sane."""
    return max(1.0, math.log2(max(n, 2)))


def delta(alpha: float, n: int) -> float:
    """Notation 3: ``Δ = log(1/(1-α) + log n)``.

    For ``α = 1`` the inner term is infinite; we return ``inf`` so the
    ``log n / Δ`` term of Theorem 4 correctly vanishes.
    """
    _check_unit("alpha", alpha)
    if alpha == 1.0:
        return math.inf
    return math.log2(1.0 / (1.0 - alpha) + log2n(n))


def thm4_expected_rounds(n: int, alpha: float, beta: float) -> float:
    """Theorem 4: ``O(1/(αβn) + (1/α)·log n/Δ)`` expected rounds."""
    _check_unit("alpha", alpha)
    _check_unit("beta", beta)
    d = delta(alpha, n)
    tail = 0.0 if math.isinf(d) else log2n(n) / d
    return 1.0 / (alpha * beta * n) + tail / alpha


def cor5_bound(epsilon: float) -> float:
    """Corollary 5: with ``m = n`` and ``α >= 1 - n^{-ε}``, ``O(1/ε)``."""
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    return 1.0 / epsilon


def lemma7_iteration_bound(n: int, alpha: float) -> float:
    """Lemma 7: the while loop runs ``O(log n / Δ)`` iterations."""
    d = delta(alpha, n)
    if math.isinf(d):
        return 1.0
    return log2n(n) / d


def thm1_lower(n: int, m: int, alpha: float, beta: float) -> float:
    """Theorem 1: ``Ω(1/(αβn))`` expected probes per player."""
    _check_unit("alpha", alpha)
    _check_unit("beta", beta)
    return 1.0 / (alpha * beta * n)


def thm2_lower(alpha: float, beta: float) -> float:
    """Theorem 2: ``Ω(min(1/α, 1/β))`` expected probes (constant 1/2)."""
    _check_unit("alpha", alpha)
    _check_unit("beta", beta)
    return 0.5 * min(1.0 / alpha, 1.0 / beta)


def thm11_rounds(n: int, alpha: float, beta: float) -> float:
    """Theorem 11: DISTILL^HP finishes *everyone* in
    ``O(log n/(αβn) + log n/α)`` rounds w.h.p."""
    _check_unit("alpha", alpha)
    _check_unit("beta", beta)
    return log2n(n) / (alpha * beta * n) + log2n(n) / alpha


def async_ec04_expected_rounds(n: int, alpha: float, beta: float) -> float:
    """The prior algorithm of [1] under round robin (Section 1.2):
    ``O(log n/(αβn) + log n/α)`` expected rounds — same form as Theorem
    11's high-probability bound, but here it is the *expectation*."""
    return thm11_rounds(n, alpha, beta)


def thm12_payment_bound(q0: float, m: int, n: int, alpha: float) -> float:
    """Theorem 12: per-player payment ``O(q0 · m log n/(αn))``.

    The proof sums ``2^(i+1)·(m_i log n/(αn) + log n/α)`` over classes up
    to ``i0 = log q0``; the geometric sum of the second terms contributes
    ``O(q0 log n/α)``, which the paper absorbs under ``m = Θ(n)``. We keep
    it explicit so the bound is meaningful for any ``m``.
    """
    _check_unit("alpha", alpha)
    if q0 < 1:
        raise ConfigurationError(f"q0 must be >= 1 (w.l.o.g.), got {q0}")
    return (
        q0 * m * log2n(n) / (alpha * n)
        + 4.0 * q0 * log2n(n) / alpha
        + q0
    )


def trivial_expected_probes(beta: float) -> float:
    """The billboard-free baseline: geometric with success rate ``β``."""
    _check_unit("beta", beta)
    return 1.0 / beta
