"""The theory card: every bound of the paper at one parameter point.

A quick-reference rendering of all closed-form curves for a given
``(n, m, α, β)`` — what the paper predicts before you simulate anything.
Used by ``repro bounds`` on the CLI and handy in notebooks::

    >>> from repro.analysis.card import theory_card
    >>> print(theory_card(n=1024, m=1024, alpha=0.9, beta=1/16))
"""

from __future__ import annotations

import math
from typing import Dict

from repro.analysis.bounds import (
    delta,
    lemma7_iteration_bound,
    thm1_lower,
    thm2_lower,
    thm4_expected_rounds,
    thm11_rounds,
    thm12_payment_bound,
    trivial_expected_probes,
)
from repro.errors import ConfigurationError


def theory_values(
    n: int, m: int, alpha: float, beta: float, q0: float = 1.0
) -> Dict[str, float]:
    """All bound values, keyed by the claim they come from."""
    if n < 1 or m < 1:
        raise ConfigurationError(f"need n, m >= 1, got n={n}, m={m}")
    return {
        "delta (Notation 3)": delta(alpha, n),
        "Thm 1 lower bound (rounds)": thm1_lower(n, m, alpha, beta),
        "Thm 2 lower bound (probes)": thm2_lower(alpha, beta),
        "Thm 4 DISTILL expected rounds": thm4_expected_rounds(
            n, alpha, beta
        ),
        "Lemma 7 iterations": lemma7_iteration_bound(n, alpha),
        "Thm 11 DISTILL^HP whp rounds": thm11_rounds(n, alpha, beta),
        "Thm 12 payment (at q0)": thm12_payment_bound(q0, m, n, alpha),
        "prior algorithm expected rounds": thm11_rounds(n, alpha, beta),
        "trivial probing expected probes": trivial_expected_probes(beta),
    }


def theory_card(
    n: int, m: int, alpha: float, beta: float, q0: float = 1.0
) -> str:
    """Human-readable rendering of :func:`theory_values`.

    All curves are constant-free (the paper's hidden constants are not
    ours to print); compare *shapes* across parameter points, not the
    absolute values against measurements.
    """
    values = theory_values(n, m, alpha, beta, q0)
    width = max(len(k) for k in values)
    lines = [
        f"theory card  n={n}  m={m}  alpha={alpha:g}  beta={beta:g}"
        + (f"  q0={q0:g}" if q0 != 1.0 else ""),
        "-" * (width + 14),
    ]
    for key, value in values.items():
        rendered = "inf" if math.isinf(value) else f"{value:12.3f}"
        lines.append(f"{key.ljust(width)}  {rendered}")
    lines.append("-" * (width + 14))
    lines.append("(constant-free curves; compare shapes, not absolutes)")
    return "\n".join(lines)
