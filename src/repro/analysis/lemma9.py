"""Lemma 9 — the paper's technical sequence inequality, executable.

Lemma 9 states: for a non-increasing sequence of positive integers
``σ = (c_0, c_1, ..., c_T)`` and a constant ``0 < a < 1``, with

    f(σ) = Σ_{t=1..T} c_t / c_{t-1}      and
    g_a(σ) = Σ_{t=0..T} a^{1/c_t},

every such sequence satisfies ``g_a(σ) ≤ (⌈f(σ)⌉ + 1) · a^{1/c_0}``.

The lemma is what turns the per-iteration Chernoff failure bounds of
Lemma 10 into a *constant* total failure probability, independent of how
the adversary shapes the candidate-set trajectory.

Erratum (reproduction finding)
------------------------------
As printed, the inequality is **false in general**: ``σ = (4, 2, 1)``
with ``a = 1/2`` has ``f(σ) = 1``, bound ``2·2^{-1/4} ≈ 1.68``, but
``g_a(σ) ≈ 2.05``. Randomized search also finds violations up to ~1.29x
inside the Lemma 10 application regime (``a = e^{-n/16}``,
``c_0 ≤ 4n/k2``). The culprit is the per-sequence ceiling
``⌈f(σ)⌉ + 1``: chains of small elements buy extra ``g``-terms at ratio
cost below 1 each.

What Lemma 10 actually needs is the *budget-capped* form — replace
``f(σ)`` by the a-priori cap ``F = 8(1-α) ≤ 8`` of Equation 2:

    for every non-increasing σ with f(σ) ≤ F:
        g_a(σ) ≤ (⌈F⌉ + 1) · a^{1/c_0}.

This version holds throughout the application regime (empirically tight
only at the degenerate all-ones chain) and is provable when
``ln(1/a)/c_0 ≥ 1`` — which the proof's own constants guarantee, since
``a = e^{-n/16}`` and ``c_0 ≤ 4n/k2`` give ``ln(1/a)/c_0 ≥ k2/64 ≥ 3``
at the paper's ``k2 ≥ 192``: then ``c_t ≤ r_t·c_0`` yields
``a^{1/c_t} ≤ a^{1/(r_t c_0)} ≤ r_t·a^{1/c_0}`` term by term (using
``(1/r − 1)·ln(1/a)/c_0 ≥ ln(1/r)``), so ``g ≤ (1 + F)·a^{1/c_0}``.
Theorem 4 is unaffected; see EXPERIMENTS.md. This module implements both
forms so the tests can exhibit the counterexample and verify the capped
form on real DISTILL trajectories and worst-case kernel traces.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import ConfigurationError


def _validate(sigma: Sequence[int]) -> None:
    if not sigma:
        raise ConfigurationError("sigma must be non-empty")
    previous = None
    for value in sigma:
        if int(value) != value or value <= 0:
            raise ConfigurationError(
                f"sigma must contain positive integers, got {value!r}"
            )
        if previous is not None and value > previous:
            raise ConfigurationError(
                f"sigma must be non-increasing, got ...{previous}, {value}..."
            )
        previous = value


def f_sigma(sigma: Sequence[int]) -> float:
    """``f(σ) = Σ_{t>=1} c_t/c_{t-1}`` — the ratio sum of Equation 2."""
    _validate(sigma)
    return float(
        sum(b / a for a, b in zip(sigma, sigma[1:]))
    )


def g_a(sigma: Sequence[int], a: float) -> float:
    """``g_a(σ) = Σ_t a^(1/c_t)`` — the total failure-probability proxy."""
    _validate(sigma)
    if not 0 < a < 1:
        raise ConfigurationError(f"a must be in (0, 1), got {a}")
    return float(sum(a ** (1.0 / c) for c in sigma))


def lemma9_bound(sigma: Sequence[int], a: float) -> float:
    """The lemma's right-hand side, ``(⌈f(σ)⌉ + 1)·a^(1/c_0)``."""
    _validate(sigma)
    if not 0 < a < 1:
        raise ConfigurationError(f"a must be in (0, 1), got {a}")
    return (math.ceil(f_sigma(sigma)) + 1) * a ** (1.0 / sigma[0])


def lemma9_holds(sigma: Sequence[int], a: float) -> bool:
    """Whether ``g_a(σ) ≤ (⌈f(σ)⌉ + 1)·a^(1/c_0)`` (with float slack).

    This is the inequality *as printed*, which the module docstring's
    erratum shows is false in general; kept for exhibiting the
    counterexamples. Use :func:`lemma9_capped_holds` for the form the
    Theorem 4 proof relies on.
    """
    return g_a(sigma, a) <= lemma9_bound(sigma, a) * (1 + 1e-12) + 1e-15


def lemma9_capped_bound(sigma: Sequence[int], a: float, cap: float) -> float:
    """The budget-capped right-hand side ``(⌈cap⌉ + 1)·a^(1/c_0)``."""
    _validate(sigma)
    if not 0 < a < 1:
        raise ConfigurationError(f"a must be in (0, 1), got {a}")
    if cap < 0:
        raise ConfigurationError(f"cap must be >= 0, got {cap}")
    return (math.ceil(cap) + 1) * a ** (1.0 / sigma[0])


def lemma9_capped_holds(sigma: Sequence[int], a: float, cap: float) -> bool:
    """The corrected form: ``g_a(σ) ≤ (⌈cap⌉+1)·a^(1/c_0)`` for every
    non-increasing σ with ``f(σ) ≤ cap`` (the caller's obligation)."""
    return (
        g_a(sigma, a)
        <= lemma9_capped_bound(sigma, a, cap) * (1 + 1e-12) + 1e-15
    )


def application_a(n: int) -> float:
    """The ``a = e^{-n/16}`` at which Lemma 10 instantiates Lemma 9."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return math.exp(-n / 16.0)


def extremal_sigma(c0: int, budget: float) -> list:
    """The proof's extremal sequence (Claim A): ``⌊budget⌋ + 1`` copies of
    ``c_0`` followed, when ``budget`` is fractional, by one last element
    whose ratio to ``c_0`` equals the leftover fraction — i.e.
    ``⌊c_0 · (budget − ⌊budget⌋)⌋``. This shape maximizes ``g_a`` among
    non-increasing sequences starting at ``c_0`` with ``f(σ) ≤ budget``.

    (The paper's Claim A prints the last element as ``c_0/(B − ⌊B⌋)``,
    which would exceed ``c_0`` and break monotonicity; the ratio form
    ``c_0 · (B − ⌊B⌋)`` is the one consistent with ``f(σ) ≤ B`` and with
    the surrounding argument, so that is what we build.)
    """
    if c0 < 1:
        raise ConfigurationError(f"c0 must be >= 1, got {c0}")
    if budget < 0:
        raise ConfigurationError(f"budget must be >= 0, got {budget}")
    whole = int(math.floor(budget))
    sigma = [c0] * (whole + 1)
    fraction = budget - whole
    tail = int(math.floor(c0 * fraction))
    if tail >= 1:  # a fractional tail only exists when c0*fraction >= 1
        sigma.append(min(c0, tail))
    return sigma
