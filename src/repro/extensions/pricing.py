"""Reputation feeding back into prices — the third open problem.

"In market systems like eBay, the reputation of an object influences its
cost: a seller with little positive reputation will make up for it by
setting a low price. What is the effect of incorporating feedback via
pricing into the model?"

:class:`PricedEngine` implements demand pricing on top of the standard
engine: the cost of probing object ``i`` in round ``r`` is

    cost_i(r) = base_cost_i · (1 + premium · votes_i(r)),

where ``votes_i(r)`` is the object's effective vote count at the start of
the round. Time complexity is untouched (strategies never see prices in
the unit-time model), but *payments* change shape: the very convergence
DISTILL engineers — everyone piling onto one good object — now carries a
popularity premium, and latecomers (the players Lemma 6's advice
mechanism rescues) pay the most. Ablation A3 measures the premium's
incidence: mean and worst-case payment vs ``premium``, and the transfer
from late finishers to the market.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.engine import SynchronousEngine


class PricedEngine(SynchronousEngine):
    """Synchronous engine with vote-demand pricing.

    Parameters are those of :class:`SynchronousEngine` plus ``premium``,
    the per-vote price multiplier (0 recovers the base engine exactly).
    """

    def __init__(self, *args, premium: float = 0.1, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if premium < 0:
            raise ConfigurationError(
                f"premium must be >= 0, got {premium}"
            )
        self.premium = premium

    def _probe_costs(
        self, round_no: int, targets: np.ndarray, base_costs: np.ndarray
    ) -> np.ndarray:
        if self.premium == 0:
            return base_costs[targets]
        votes = self.board.current_vote_array(before_round=round_no)
        counts = np.bincount(
            votes[votes >= 0], minlength=self.instance.m
        ).astype(np.float64)
        return base_costs[targets] * (
            1.0 + self.premium * counts[targets]
        )
