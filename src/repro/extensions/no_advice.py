"""Ablating PROBE&SEEKADVICE's advice half.

Lemma 6 is carried entirely by the rule that "at every second step, each
player makes a probe that follows a recommendation of a randomly chosen
player": once ``αn/2`` honest players are satisfied, everyone else
finishes in ``4/α`` expected extra rounds by copying.

:class:`NoAdviceDistill` removes exactly that: both rounds of every
invocation explore the current pool uniformly. The phase structure,
thresholds, and vote rules are untouched, so ablation A4 isolates the
advice mechanism's contribution — most visible in the *tail*
(``max_individual_rounds``): without advice, stragglers must personally
probe the good object out of whatever pool they are in, instead of being
pulled in by the crowd.
"""

from __future__ import annotations

import numpy as np

from repro.billboard.views import BillboardView
from repro.core.distill import DistillStrategy


class NoAdviceDistill(DistillStrategy):
    """DISTILL with exploration in place of every advice round."""

    name = "distill-no-advice"

    def choose_probes(
        self,
        round_no: int,
        active_players: np.ndarray,
        view: BillboardView,
    ) -> np.ndarray:
        self.tracker.advance(round_no, view)
        return self.alternator.explore(
            self.tracker.pool, active_players.size, self.rng
        )
