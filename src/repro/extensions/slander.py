""""Is slander useless?" — the first open problem of Section 6.

DISTILL "uses only positive recommendations ('this object is good'), and
flatly ignores bad recommendations ('that object is bad')". Could
negative reports close the gap between the upper and lower bounds?

This module builds the experiment:

* :class:`SlanderingDistill` — DISTILL whose candidate pools additionally
  *consume* negative reports: an object discredited by at least
  ``slander_threshold`` distinct reporters is dropped from every pool.
  Readers cap each player's negative influence at one discredit per
  object (the analogue of the one-vote rule), so the mechanism is not
  trivially unbounded.
* :class:`SlanderAdversary` — the smear campaign: dishonest players spend
  their posts bad-mouthing *good* objects (they know which ones — they
  are Byzantine) to get them discredited.

The measurable answer (ablation A1): against honest worlds slander
prunes bad candidates and helps a little; against the smear campaign a
slander-trusting reader can be denied the good object entirely unless
``slander_threshold`` exceeds the adversary's coordination budget —
i.e. negative information is only as useful as the number of dishonest
players is small, which is exactly why the paper's one-sided design is
the robust choice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

import numpy as np

from repro.adversaries.base import Adversary
from repro.billboard.post import PostKind
from repro.billboard.views import BillboardView
from repro.core.distill import DistillStrategy
from repro.core.parameters import DistillParameters
from repro.errors import ConfigurationError
from repro.sim.actions import VoteAction
from repro.strategies.base import StrategyContext
from repro.world.instance import Instance


def discredited_objects(
    view: BillboardView, threshold: int, value_cutoff: float
) -> np.ndarray:
    """Objects with >= ``threshold`` distinct negative reporters.

    A negative report is a REPORT post claiming a value below
    ``value_cutoff``; only each reporter's first report per object
    counts (reader-side capping, like the vote rule).
    """
    reporters: Dict[int, Set[int]] = {}
    for post in view.posts(kind=PostKind.REPORT):
        if post.reported_value < value_cutoff:
            reporters.setdefault(post.object_id, set()).add(post.player)
    bad = [obj for obj, who in reporters.items() if len(who) >= threshold]
    return np.array(sorted(bad), dtype=np.int64)


class SlanderingDistill(DistillStrategy):
    """DISTILL that also believes sufficiently-corroborated slander.

    Run with ``EngineConfig(record_reports=True)`` so honest negative
    reports actually reach the board.
    """

    name = "distill-slander"

    def __init__(
        self,
        slander_threshold: int = 3,
        params: Optional[DistillParameters] = None,
    ) -> None:
        super().__init__(params=params)
        if slander_threshold < 1:
            raise ConfigurationError(
                f"slander_threshold must be >= 1, got {slander_threshold}"
            )
        self.slander_threshold = slander_threshold

    def reset(self, ctx: StrategyContext, rng: np.random.Generator) -> None:
        super().reset(ctx, rng)
        self._last_discredited: np.ndarray = np.array([], dtype=np.int64)

    def choose_probes(
        self,
        round_no: int,
        active_players: np.ndarray,
        view: BillboardView,
    ) -> np.ndarray:
        self.tracker.advance(round_no, view)
        self._last_discredited = discredited_objects(
            view, self.slander_threshold, self.ctx.good_threshold
        )
        if self.tracker.is_advice_round(round_no):
            picks = self.alternator.advise(
                active_players.size, view, self.rng
            )
            # refuse advice pointing at discredited objects
            if self._last_discredited.size:
                picks = np.where(
                    np.isin(picks, self._last_discredited), -1, picks
                )
            return picks
        pool = self.tracker.pool
        if self._last_discredited.size:
            pool = pool[~np.isin(pool, self._last_discredited)]
        return self.alternator.explore(pool, active_players.size, self.rng)

    def info(self):
        out = super().info()
        out["algorithm"] = self.name
        out["discredited_count"] = int(self._last_discredited.size)
        return out


class SlanderAdversary(Adversary):
    """The smear campaign: discredit the good objects.

    Each dishonest player posts one negative report per good object
    (value 0, "it was terrible"), spread over the first rounds. Against
    :class:`SlanderingDistill` with threshold ``t``, any good object is
    suppressed as soon as ``t`` dishonest players exist; against plain
    DISTILL these posts are pure noise — the paper's design choice made
    visible.
    """

    name = "slander"

    def reset(self, instance: Instance, rng: np.random.Generator) -> None:
        super().reset(instance, rng)
        self._queue: List[VoteAction] = [
            VoteAction(
                player=int(player),
                object_id=int(obj),
                claimed_value=0.0,
                kind=PostKind.REPORT,
            )
            for obj in instance.space.good_ids
            for player in self.dishonest_ids
        ]
        # one batch per round keeps the board stamps tidy
        self._per_round = max(1, len(self._queue) // 8)

    def act(self, round_no: int, view: BillboardView) -> List[VoteAction]:
        batch = self._queue[: self._per_round]
        self._queue = self._queue[self._per_round:]
        return batch
