"""Objects associated with players — the second open problem of Section 6.

"We have decoupled the objects from the players. What is the effect of
associating each object with a player?"

The natural coupling (an eBay seller *is* its listing): ``m = n``, object
``i`` is owned by player ``i``, dishonest players own bad objects, and
honest players own good objects with some probability ``p_good`` (an
honest seller can still have a lousy product). Two consequences the
experiment (ablation A2) measures:

* the good fraction is no longer a free parameter —
  ``β = α·p_good`` — so honesty shortages hit twice (fewer helpers *and*
  fewer good objects);
* the one-vote budget meets self-promotion: a dishonest player's most
  natural lie is to vote for *its own* object
  (:class:`SelfPromotionAdversary`), which concentrates exactly the
  vote pattern DISTILL's thresholds were built to absorb.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.adversaries.base import Adversary
from repro.billboard.views import BillboardView
from repro.errors import ConfigurationError
from repro.sim.actions import VoteAction
from repro.world.instance import Instance, roles_from_alpha
from repro.world.objects import ObjectSpace


def ownership_instance(
    n: int,
    alpha: float,
    p_good: float,
    rng: np.random.Generator,
) -> Instance:
    """A coupled world: object ``i`` belongs to player ``i``.

    Dishonest players' objects are bad; each honest player's object is
    good independently with probability ``p_good`` (at least one good
    object is guaranteed by re-rolling a failed world — the model is
    vacuous otherwise).
    """
    if not 0 < p_good <= 1:
        raise ConfigurationError(f"p_good must be in (0, 1], got {p_good}")
    honest = roles_from_alpha(n, alpha, rng=rng, shuffle=True)
    good = honest & (rng.random(n) < p_good)
    if not good.any():
        good = honest.copy()
        keep = rng.choice(np.flatnonzero(honest))
        good[:] = False
        good[keep] = True
    values = np.where(good, 1.0, 0.0)
    space = ObjectSpace(values, np.ones(n), good, good_threshold=0.5)
    return Instance(space, honest)


class SelfPromotionAdversary(Adversary):
    """Every dishonest player votes for its own (bad) object at once.

    The ownership analogue of the flood adversary — but unlike the
    flood's spread over arbitrary bad objects, self-promotion is
    *detectable in principle* (a vote for one's own object), which is
    exactly the kind of structure a notion of trust could exploit; the
    measurable point here is that DISTILL never needs to: the one-vote
    budget already caps the damage.
    """

    name = "self-promotion"

    def reset(self, instance: Instance, rng: np.random.Generator) -> None:
        super().reset(instance, rng)
        if instance.m != instance.n:
            raise ConfigurationError(
                "self-promotion needs the coupled world (m == n)"
            )
        self._fired = False

    def act(self, round_no: int, view: BillboardView) -> List[VoteAction]:
        if self._fired:
            return []
        self._fired = True
        return [
            VoteAction(player=int(p), object_id=int(p))
            for p in self.dishonest_ids
        ]
