"""Explorations of the paper's open problems (Section 6).

The conclusion poses four questions; this package builds measurable
models for the first three (the fourth — a non-trivial notion of trust —
is a research program, not a module):

1. **"Is slander useless?"** — :mod:`repro.extensions.slander`: a DISTILL
   variant whose candidate pools also consume *negative* reports, and the
   smear-campaign adversary that punishes it (ablation A1).
2. **Objects associated with players** —
   :mod:`repro.extensions.ownership`: every object is owned by a player,
   dishonest players own bad objects and self-promote (ablation A2).
3. **Reputation feeding back into prices** —
   :mod:`repro.extensions.pricing`: probe costs rise with an object's
   vote count (demand pricing), so popularity itself becomes expensive
   (ablation A3).

Plus one pure design ablation of the paper's own machinery:

4. **The advice mechanism** — :mod:`repro.extensions.no_advice`: DISTILL
   with PROBE&SEEKADVICE's advice half removed, isolating what Lemma 6
   buys (ablation A4).
"""

from repro.extensions.no_advice import NoAdviceDistill
from repro.extensions.ownership import (
    SelfPromotionAdversary,
    ownership_instance,
)
from repro.extensions.pricing import PricedEngine
from repro.extensions.slander import SlanderAdversary, SlanderingDistill

__all__ = [
    "NoAdviceDistill",
    "PricedEngine",
    "SelfPromotionAdversary",
    "SlanderAdversary",
    "SlanderingDistill",
    "ownership_instance",
]
