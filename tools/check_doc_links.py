#!/usr/bin/env python3
"""Stdlib link and anchor checker for the repo's markdown documentation.

Walks every markdown link (``[text](target)``) in the given files and
verifies that relative targets exist on disk and that ``#anchor``
fragments name a real heading in the target document (GitHub-style
slugs). External ``http(s)``/``mailto`` links are skipped — CI runs
offline. Links inside fenced code blocks are ignored.

In the default (no-argument) mode it also fails on **orphan pages**: a
``docs/*.md`` file that no chain of links starting at ``docs/README.md``
(the index every reader enters through) can reach. A page nobody can
navigate to is documentation rot in its purest form.

Usage::

    python tools/check_doc_links.py               # docs/*.md + README.md
    python tools/check_doc_links.py FILE [FILE…]  # explicit file list

Exit codes: 0 clean, 1 broken links (one line per problem on stderr),
2 usage error. No dependencies beyond the standard library.
"""

import glob
import os
import re
import sys
from typing import Dict, List, Set, Tuple

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^(#{1,6})\s+(.*)$")
FENCE = re.compile(r"^(```|~~~)")


def strip_code_blocks(text: str) -> str:
    """Blank out fenced code blocks, preserving line numbers."""
    out: List[str] = []
    in_fence = False
    for line in text.splitlines():
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            out.append("")
        else:
            out.append("" if in_fence else line)
    return "\n".join(out)


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: str, cache: Dict[str, Set[str]]) -> Set[str]:
    if path not in cache:
        slugs: Set[str] = set()
        counts: Dict[str, int] = {}
        with open(path, encoding="utf-8") as handle:
            text = strip_code_blocks(handle.read())
        for line in text.splitlines():
            match = HEADING.match(line)
            if not match:
                continue
            slug = github_slug(match.group(2))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = slugs
    return cache[path]


def check_file(path: str, cache: Dict[str, Set[str]]) -> List[str]:
    problems: List[str] = []
    with open(path, encoding="utf-8") as handle:
        text = strip_code_blocks(handle.read())
    for lineno, line in enumerate(text.splitlines(), start=1):
        for target in LINK.findall(line):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            file_part, _, anchor = target.partition("#")
            if file_part:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), file_part)
                )
                if not os.path.exists(resolved):
                    problems.append(
                        f"{path}:{lineno}: broken link {target!r} "
                        f"({resolved} does not exist)"
                    )
                    continue
            else:
                resolved = path
            if anchor:
                if not resolved.endswith((".md", ".markdown")):
                    continue
                if anchor not in anchors_of(resolved, cache):
                    problems.append(
                        f"{path}:{lineno}: broken anchor {target!r} "
                        f"(no heading slug {anchor!r} in {resolved})"
                    )
    return problems


def markdown_targets(path: str) -> List[str]:
    """Resolved on-disk markdown files that ``path`` links to."""
    with open(path, encoding="utf-8") as handle:
        text = strip_code_blocks(handle.read())
    targets: List[str] = []
    for target in LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part = target.partition("#")[0]
        if not file_part:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), file_part)
        )
        if resolved.endswith((".md", ".markdown")) and os.path.isfile(
            resolved
        ):
            targets.append(resolved)
    return targets


def find_orphans() -> List[str]:
    """``docs/*.md`` pages unreachable by links from ``docs/README.md``."""
    index = os.path.join(ROOT, "docs", "README.md")
    pages = set(glob.glob(os.path.join(ROOT, "docs", "*.md")))
    reachable, frontier = {index}, [index]
    while frontier:
        for target in markdown_targets(frontier.pop()):
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    return [
        f"{os.path.relpath(page, ROOT)}: orphan page — no link chain "
        "from docs/README.md reaches it"
        for page in sorted(pages - reachable)
    ]


def default_files() -> List[str]:
    files = sorted(glob.glob(os.path.join(ROOT, "docs", "*.md")))
    files.append(os.path.join(ROOT, "README.md"))
    return files


def main(argv: List[str]) -> int:
    files = argv or default_files()
    missing = [f for f in files if not os.path.isfile(f)]
    if missing:
        for f in missing:
            print(f"no such file: {f}", file=sys.stderr)
        return 2
    cache: Dict[str, Set[str]] = {}
    problems: List[str] = []
    for path in files:
        problems.extend(check_file(path, cache))
    if not argv:
        problems.extend(find_orphans())
    for problem in problems:
        print(problem, file=sys.stderr)
    checked: Tuple[int, int] = (len(files), len(problems))
    print(f"checked {checked[0]} file(s): {checked[1]} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
