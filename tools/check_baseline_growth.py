#!/usr/bin/env python3
"""Fail if reprolint-baseline.json gained entries relative to a base ref.

The baseline is a ratchet: it may shrink (debt paid down) or stay put,
but it must never grow — new violations get *fixed* or carry a reasoned
inline ``# repro: noqa=RPLxxx(reason)``, not a fresh inventory entry.
This guard makes the ratchet mechanical in CI:

    python tools/check_baseline_growth.py --base origin/main

A missing baseline file counts as zero entries on either side, so the
guard keeps working after the baseline is fully retired (today's state)
and would catch the file being *reintroduced* with entries.

stdlib only; exit 0 = ok, 1 = baseline grew, 2 = usage/environment error.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys

BASELINE = "reprolint-baseline.json"


def entry_count(payload: str, origin: str) -> int:
    """Total violation count in a baseline JSON document."""
    try:
        data = json.loads(payload)
    except json.JSONDecodeError as exc:
        sys.stderr.write(f"error: {origin} is not valid JSON: {exc}\n")
        raise SystemExit(2) from None
    return sum(int(entry.get("count", 1)) for entry in data.get("entries", []))


def count_at_ref(ref: str) -> int:
    """Entry count of the baseline as committed at *ref* (0 if absent)."""
    proc = subprocess.run(
        ["git", "show", f"{ref}:{BASELINE}"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        stderr = proc.stderr.lower()
        if "does not exist" in stderr or "exists on disk, but not in" in stderr:
            return 0
        sys.stderr.write(
            f"error: cannot read {BASELINE} at {ref}:\n{proc.stderr}"
        )
        raise SystemExit(2)
    return entry_count(proc.stdout, f"{ref}:{BASELINE}")


def count_in_worktree() -> int:
    if not os.path.exists(BASELINE):
        return 0
    with open(BASELINE, encoding="utf-8") as handle:
        return entry_count(handle.read(), BASELINE)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--base",
        default="origin/main",
        metavar="REF",
        help="git ref to compare against (default: origin/main)",
    )
    args = parser.parse_args(argv)

    base = count_at_ref(args.base)
    current = count_in_worktree()
    if current > base:
        sys.stderr.write(
            f"error: {BASELINE} grew from {base} to {current} entries "
            f"vs {args.base}; fix new violations (or use a reasoned "
            "inline `# repro: noqa=...`) instead of baselining them\n"
        )
        return 1
    print(
        f"baseline ratchet ok: {current} entries "
        f"(base {args.base}: {base})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
