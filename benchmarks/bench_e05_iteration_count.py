"""Bench E5 — Lemma 7 iteration count.

Worst-case splitting-game kernel to n = 2^28 plus engine runs: the
while loop is sub-logarithmic, fitting log n / Delta.

Regenerates the E5 table of EXPERIMENTS.md (archived under
benchmarks/results/E5.txt).
"""


def bench_e05_iteration_count(run_and_record):
    run_and_record("E5")
