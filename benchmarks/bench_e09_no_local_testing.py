"""Bench E9 — Theorem 13 search without local testing.

Mutable best-so-far votes at the prescribed run length: every honest
player holds a good object w.h.p.

Regenerates the E9 table of EXPERIMENTS.md (archived under
benchmarks/results/E9.txt).
"""


def bench_e09_no_local_testing(run_and_record):
    run_and_record("E9")
