"""Bench A2 — ownership coupling.

Objects owned by players, dishonest self-promotion; cost follows
Theorem 4 at the induced beta.

Regenerates the A2 table of EXPERIMENTS.md (archived under
benchmarks/results/A2.txt).
"""


def bench_a02_ownership(run_and_record):
    run_and_record("A2")
