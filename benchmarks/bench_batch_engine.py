"""Trial-lane batching benchmark — single-core speedup from ``batch_lanes``.

One representative E3 cell (DISTILL vs the adaptive split-vote adversary
at ``n = m``, ``beta = 1/n``) run with ``n_jobs=1`` at lane counts
``K ∈ {1, 8, 32, 64}``. ``K=1`` is the scalar engine — the pinned
reference — and every batched run is asserted bit-identical to it before
any speedup is reported. Results go to ``BENCH_batch.json`` at the repo
root (copy under ``benchmarks/results/``).

Unlike the process-pool axis (``BENCH_runner.json``), the lane axis is
*core-count independent*: the win comes from amortizing the Python round
loop and the per-post billboard bookkeeping across lanes, plus the
vectorized split-vote slot allocator and the columnar no-hash lane
boards. A 1-core CI runner shows the same ratios as a workstation.

Run directly (``python benchmarks/bench_batch_engine.py``) or through
pytest; ``REPRO_BENCH_SCALE=smoke`` shrinks the cell for CI smoke jobs.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from typing import Dict, List

import numpy as np

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.core.distill import DistillStrategy
from repro.sim.engine import EngineConfig
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance

try:  # pytest imports this as benchmarks.bench_batch_engine
    from benchmarks.artifacts import REPO_ROOT, write_bench_json
except ImportError:  # `python benchmarks/bench_batch_engine.py`
    from artifacts import REPO_ROOT, write_bench_json

OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_batch.json")

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

#: lane counts on the trajectory; K=1 is the scalar reference engine
LANE_COUNTS = [1, 4, 8] if SCALE == "smoke" else [1, 8, 32, 64]


def measure_lane_scaling() -> Dict[str, object]:
    if SCALE == "smoke":
        n, trials, alpha = 64, 8, 0.5
    else:
        n, trials, alpha = 4096, 64, 0.2
    beta = 1.0 / n

    def cell(lanes: int):
        return run_trials(
            make_instance=lambda rng: planted_instance(
                n=n, m=n, beta=beta, alpha=alpha, rng=rng
            ),
            make_strategy=DistillStrategy,
            make_adversary=SplitVoteAdversary,
            n_trials=trials,
            seed=SEED,
            config=EngineConfig(max_rounds=500_000),
            n_jobs=1,
            batch_lanes=None if lanes == 1 else lanes,
        )

    reference = None
    points: List[Dict[str, object]] = []
    for lanes in LANE_COUNTS:
        start = time.perf_counter()
        result = cell(lanes)
        seconds = time.perf_counter() - start
        if reference is None:
            reference = result
            ref_seconds = seconds
        bit_identical = all(
            np.array_equal(reference.per_trial[key], result.per_trial[key])
            for key in reference.per_trial
        )
        assert bit_identical, (
            f"batch_lanes={lanes} diverged from the scalar engine"
        )
        points.append(
            {
                "batch_lanes": lanes,
                "seconds": seconds,
                "seconds_per_trial": seconds / trials,
                "speedup_vs_scalar": ref_seconds / max(seconds, 1e-9),
                "bit_identical": bit_identical,
            }
        )

    return {
        "experiment": (
            f"E3-representative cell: distill vs split-vote, "
            f"n=m={n}, beta=1/n, alpha={alpha}"
        ),
        "n_trials": trials,
        "n_jobs": 1,
        "points": points,
    }


def main() -> Dict[str, object]:
    data = {
        "schema": "repro-bench-batch/1",
        "generated_unix": time.time(),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "config": {"scale": SCALE, "seed": SEED},
        "lane_scaling": measure_lane_scaling(),
    }
    write_bench_json("BENCH_batch.json", data)

    print(f"wrote {OUTPUT_PATH}")
    for point in data["lane_scaling"]["points"]:
        print(
            f"batch_lanes={point['batch_lanes']:>3}: "
            f"{point['seconds']:7.2f}s "
            f"({point['seconds_per_trial'] * 1e3:8.1f} ms/trial, "
            f"{point['speedup_vs_scalar']:5.2f}x vs scalar, "
            f"bit_identical={point['bit_identical']})"
        )
    return data


def bench_batch_engine(results_dir):
    """Pytest entry: record the lane-scaling point and sanity-check it."""
    data = main()
    assert os.path.exists(OUTPUT_PATH)
    points = {
        p["batch_lanes"]: p for p in data["lane_scaling"]["points"]
    }
    assert all(p["bit_identical"] for p in points.values())
    if SCALE != "smoke":
        # The PR's headline acceptance: >= 5x single-core at K=32.
        assert points[32]["speedup_vs_scalar"] >= 5.0
    else:
        assert points[max(points)]["speedup_vs_scalar"] > 1.0


if __name__ == "__main__":
    main()
