"""Trial-lane batching benchmark — single-core speedup from ``batch_lanes``.

Three trajectories, all with ``n_jobs=1``:

* ``lane_scaling`` — one representative E3 cell (DISTILL vs the adaptive
  split-vote adversary at ``n = m``, ``beta = 1/n``) at lane counts
  ``K ∈ {1, 8, 32, 64}``;
* ``faulted_lane_scaling`` — the same cell under an E15-representative
  fault plan (lossy posts + churn with restart), exercising the
  batch-native fault injector;
* ``grid_lanes`` — a mini E15-style sweep whose cells are individually
  smaller than the lane width, packed cross-cell by ``run_trial_grid``.

``K=1`` is the scalar engine — the pinned reference — and every batched
run is asserted bit-identical to it (per-trial summaries, and for the
grid every cell against its standalone run) before any speedup is
reported. Results go to ``BENCH_batch.json`` at the repo root (copy
under ``benchmarks/results/``).

Unlike the process-pool axis (``BENCH_runner.json``), the lane axis is
*core-count independent*: the win comes from amortizing the Python round
loop and the per-post billboard bookkeeping across lanes, plus the
vectorized split-vote slot allocator and the columnar no-hash lane
boards. A 1-core CI runner shows the same ratios as a workstation.

Run directly (``python benchmarks/bench_batch_engine.py``) or through
pytest; ``REPRO_BENCH_SCALE=smoke`` shrinks the cell for CI smoke jobs.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from typing import Dict, List

import numpy as np

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.core.distill import DistillStrategy
from repro.faults.plan import FaultPlan
from repro.sim.engine import EngineConfig
from repro.sim.runner import GridCell, run_trial_grid, run_trials
from repro.world.generators import planted_instance

try:  # pytest imports this as benchmarks.bench_batch_engine
    from benchmarks.artifacts import REPO_ROOT, write_bench_json
except ImportError:  # `python benchmarks/bench_batch_engine.py`
    from artifacts import REPO_ROOT, write_bench_json

OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_batch.json")

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

#: lane counts on the trajectory; K=1 is the scalar reference engine
LANE_COUNTS = [1, 4, 8] if SCALE == "smoke" else [1, 8, 32, 64]

#: lane counts for the faulted trajectory (scalar reference + headline K)
FAULTED_LANE_COUNTS = [1, 4] if SCALE == "smoke" else [1, 32]

#: E15-representative fault plan: lossy posts + churn with restart
FAULT_PLAN = FaultPlan(post_loss_rate=0.25, crash_rate=0.05, restart_after=4)


def measure_lane_scaling() -> Dict[str, object]:
    if SCALE == "smoke":
        n, trials, alpha = 64, 8, 0.5
    else:
        n, trials, alpha = 4096, 64, 0.2
    beta = 1.0 / n

    def cell(lanes: int):
        return run_trials(
            make_instance=lambda rng: planted_instance(
                n=n, m=n, beta=beta, alpha=alpha, rng=rng
            ),
            make_strategy=DistillStrategy,
            make_adversary=SplitVoteAdversary,
            n_trials=trials,
            seed=SEED,
            config=EngineConfig(max_rounds=500_000),
            n_jobs=1,
            batch_lanes=None if lanes == 1 else lanes,
        )

    reference = None
    points: List[Dict[str, object]] = []
    for lanes in LANE_COUNTS:
        start = time.perf_counter()
        result = cell(lanes)
        seconds = time.perf_counter() - start
        if reference is None:
            reference = result
            ref_seconds = seconds
        bit_identical = all(
            np.array_equal(reference.per_trial[key], result.per_trial[key])
            for key in reference.per_trial
        )
        assert bit_identical, (
            f"batch_lanes={lanes} diverged from the scalar engine"
        )
        points.append(
            {
                "batch_lanes": lanes,
                "seconds": seconds,
                "seconds_per_trial": seconds / trials,
                "speedup_vs_scalar": ref_seconds / max(seconds, 1e-9),
                "bit_identical": bit_identical,
            }
        )

    return {
        "experiment": (
            f"E3-representative cell: distill vs split-vote, "
            f"n=m={n}, beta=1/n, alpha={alpha}"
        ),
        "n_trials": trials,
        "n_jobs": 1,
        "points": points,
    }


def measure_faulted_scaling() -> Dict[str, object]:
    """The lane-scaling cell under an E15-representative fault plan.

    Exercises the batch-native fault injector on the hot path: lossy
    posts prune the billboard traffic and churn keeps the restart
    machinery busy, so this is the adversarial case for lane batching
    rather than the friendly one.
    """
    if SCALE == "smoke":
        n, trials, alpha = 64, 8, 0.5
    else:
        n, trials, alpha = 4096, 32, 0.2
    beta = 1.0 / n

    def cell(lanes: int):
        return run_trials(
            make_instance=lambda rng: planted_instance(
                n=n, m=n, beta=beta, alpha=alpha, rng=rng
            ),
            make_strategy=DistillStrategy,
            make_adversary=SplitVoteAdversary,
            n_trials=trials,
            seed=SEED,
            config=EngineConfig(max_rounds=500_000),
            n_jobs=1,
            batch_lanes=None if lanes == 1 else lanes,
            fault_plan=FAULT_PLAN,
            keep_metrics=True,
        )

    reference = None
    points: List[Dict[str, object]] = []
    for lanes in FAULTED_LANE_COUNTS:
        start = time.perf_counter()
        result = cell(lanes)
        seconds = time.perf_counter() - start
        if reference is None:
            reference = result
            ref_seconds = seconds
        bit_identical = all(
            np.array_equal(reference.per_trial[key], result.per_trial[key])
            for key in reference.per_trial
        ) and [m.fault_info for m in reference.metrics] == [
            m.fault_info for m in result.metrics
        ]
        assert bit_identical, (
            f"faulted batch_lanes={lanes} diverged from the scalar engine"
        )
        points.append(
            {
                "batch_lanes": lanes,
                "seconds": seconds,
                "seconds_per_trial": seconds / trials,
                "speedup_vs_scalar": ref_seconds / max(seconds, 1e-9),
                "bit_identical": bit_identical,
            }
        )

    return {
        "experiment": (
            f"E15-representative cell: distill vs split-vote, "
            f"n=m={n}, beta=1/n, alpha={alpha}, "
            f"loss={FAULT_PLAN.post_loss_rate}, "
            f"churn={FAULT_PLAN.crash_rate}/restart={FAULT_PLAN.restart_after}"
        ),
        "fault_plan": {
            "post_loss_rate": FAULT_PLAN.post_loss_rate,
            "crash_rate": FAULT_PLAN.crash_rate,
            "restart_after": FAULT_PLAN.restart_after,
        },
        "n_trials": trials,
        "n_jobs": 1,
        "points": points,
    }


def measure_grid_lanes() -> Dict[str, object]:
    """Cross-cell lane packing: a mini fault sweep via ``run_trial_grid``.

    Each cell is narrower than the lane width, so per-cell batching
    would leave lanes idle; grid packing fills them with trials from
    neighbouring cells. Every cell's results are asserted identical to
    its standalone scalar run before the speedup is reported.
    """
    if SCALE == "smoke":
        n, trials_per_cell, alpha, lanes = 32, 4, 0.5, 4
        loss_rates = [0.0, 0.25]
    else:
        n, trials_per_cell, alpha, lanes = 1024, 8, 0.2, 16
        loss_rates = [0.0, 0.1, 0.25]
    beta = 1.0 / n
    config = EngineConfig(max_rounds=500_000)

    def make_cells():
        cells = []
        for i, loss in enumerate(loss_rates):
            plan = FaultPlan(post_loss_rate=loss) if loss > 0.0 else None
            cells.append(
                GridCell(
                    make_instance=lambda rng: planted_instance(
                        n=n, m=n, beta=beta, alpha=alpha, rng=rng
                    ),
                    make_strategy=DistillStrategy,
                    make_adversary=SplitVoteAdversary,
                    n_trials=trials_per_cell,
                    seed=SEED + i,
                    fault_plan=plan,
                    label=f"loss={loss}",
                )
            )
        return cells

    cells = make_cells()

    start = time.perf_counter()
    scalar_results = [
        run_trials(
            make_instance=cell.make_instance,
            make_strategy=cell.make_strategy,
            make_adversary=cell.make_adversary,
            n_trials=cell.n_trials,
            seed=cell.seed,
            config=config,
            n_jobs=1,
            fault_plan=cell.fault_plan,
        )
        for cell in cells
    ]
    scalar_seconds = time.perf_counter() - start

    start = time.perf_counter()
    grid_results = run_trial_grid(cells, config=config, batch_lanes=lanes)
    grid_seconds = time.perf_counter() - start

    bit_identical = all(
        np.array_equal(ref.per_trial[key], got.per_trial[key])
        for ref, got in zip(scalar_results, grid_results)
        for key in ref.per_trial
    )
    assert bit_identical, "grid-lane packing diverged from per-cell scalar runs"

    total_trials = sum(cell.n_trials for cell in cells)
    return {
        "experiment": (
            f"mini E15 sweep: distill vs split-vote, n=m={n}, beta=1/n, "
            f"alpha={alpha}, post_loss_rate in {loss_rates}"
        ),
        "n_cells": len(cells),
        "n_trials_per_cell": trials_per_cell,
        "batch_lanes": lanes,
        "n_jobs": 1,
        "scalar_seconds": scalar_seconds,
        "grid_seconds": grid_seconds,
        "seconds_per_trial_scalar": scalar_seconds / total_trials,
        "seconds_per_trial_grid": grid_seconds / total_trials,
        "speedup_vs_scalar": scalar_seconds / max(grid_seconds, 1e-9),
        "bit_identical": bit_identical,
    }


def main() -> Dict[str, object]:
    data = {
        "schema": "repro-bench-batch/2",
        "generated_unix": time.time(),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "config": {"scale": SCALE, "seed": SEED},
        "lane_scaling": measure_lane_scaling(),
        "faulted_lane_scaling": measure_faulted_scaling(),
        "grid_lanes": measure_grid_lanes(),
    }
    write_bench_json("BENCH_batch.json", data)

    print(f"wrote {OUTPUT_PATH}")
    for section in ("lane_scaling", "faulted_lane_scaling"):
        print(f"{section}:")
        for point in data[section]["points"]:
            print(
                f"  batch_lanes={point['batch_lanes']:>3}: "
                f"{point['seconds']:7.2f}s "
                f"({point['seconds_per_trial'] * 1e3:8.1f} ms/trial, "
                f"{point['speedup_vs_scalar']:5.2f}x vs scalar, "
                f"bit_identical={point['bit_identical']})"
            )
    grid = data["grid_lanes"]
    print(
        f"grid_lanes: {grid['n_cells']} cells x "
        f"{grid['n_trials_per_cell']} trials at K={grid['batch_lanes']}: "
        f"{grid['grid_seconds']:.2f}s vs {grid['scalar_seconds']:.2f}s scalar "
        f"({grid['speedup_vs_scalar']:.2f}x, "
        f"bit_identical={grid['bit_identical']})"
    )
    return data


def bench_batch_engine(results_dir):
    """Pytest entry: record the lane-scaling points and sanity-check them."""
    data = main()
    assert os.path.exists(OUTPUT_PATH)
    points = {
        p["batch_lanes"]: p for p in data["lane_scaling"]["points"]
    }
    faulted = {
        p["batch_lanes"]: p for p in data["faulted_lane_scaling"]["points"]
    }
    assert all(p["bit_identical"] for p in points.values())
    assert all(p["bit_identical"] for p in faulted.values())
    assert data["grid_lanes"]["bit_identical"]
    if SCALE != "smoke":
        # The headline acceptance bars: >= 5x single-core at K=32 on the
        # clean cell, >= 4x at K=32 on the E15-representative faulted cell.
        assert points[32]["speedup_vs_scalar"] >= 5.0
        assert faulted[32]["speedup_vs_scalar"] >= 4.0
    else:
        assert points[max(points)]["speedup_vs_scalar"] > 1.0


if __name__ == "__main__":
    main()
