"""Bench E12 — Section 1.2 three-phase illustration.

m = n, sqrt(n) dishonest: P[i0 in C_i] constant, |C2| <~ sqrt n,
|C3| <= 3.

Regenerates the E12 table of EXPERIMENTS.md (archived under
benchmarks/results/E12.txt).
"""


def bench_e12_three_phase(run_and_record):
    run_and_record("E12")
