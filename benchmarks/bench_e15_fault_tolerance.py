"""Bench E15 — fault-tolerance degradation curves.

DISTILL vs the trivial baseline under lossy billboard posting and
memoryless churn (crash + restart after k rounds): rounds rise smoothly
with the fault rate while every honest player still finishes.

Regenerates the E15 table of EXPERIMENTS.md (archived under
benchmarks/results/E15.txt).
"""


def bench_e15_fault_tolerance(run_and_record):
    run_and_record("E15")
