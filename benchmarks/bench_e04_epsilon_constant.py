"""Bench E4 — Corollary 5 epsilon sweep.

alpha = 1 - n^(-eps): measured rounds track the O(1/eps) curve.

Regenerates the E4 table of EXPERIMENTS.md (archived under
benchmarks/results/E4.txt).
"""


def bench_e04_epsilon_constant(run_and_record):
    run_and_record("E4")
