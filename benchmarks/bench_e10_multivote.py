"""Bench E10 — Section 4.1 multiple votes.

f votes per player (both sides) and erroneous honest votes: cost flat
while f = o(1/(1-alpha)).

Regenerates the E10 table of EXPERIMENTS.md (archived under
benchmarks/results/E10.txt).
"""


def bench_e10_multivote(run_and_record):
    run_and_record("E10")
