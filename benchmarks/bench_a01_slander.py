"""Bench A1 — slander ablation.

Is slander useless? Plain DISTILL vs a slander-consuming reader, in
honest worlds and under a smear campaign.

Regenerates the A1 table of EXPERIMENTS.md (archived under
benchmarks/results/A1.txt).
"""


def bench_a01_slander(run_and_record):
    run_and_record("A1")
