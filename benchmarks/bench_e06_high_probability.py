"""Bench E6 — Theorem 11 high-probability termination.

DISTILL^HP last-player termination quantiles vs the
O(log n/(alpha beta n) + log n/alpha) curve.

Regenerates the E6 table of EXPERIMENTS.md (archived under
benchmarks/results/E6.txt).
"""


def bench_e06_high_probability(run_and_record):
    run_and_record("E6")
