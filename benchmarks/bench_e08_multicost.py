"""Bench E8 — Theorem 12 multiple costs.

Cost-class worlds: per-player payment grows ~linearly in q0 and stays
within the q0 m log n/(alpha n) curve.

Regenerates the E8 table of EXPERIMENTS.md (archived under
benchmarks/results/E8.txt).
"""


def bench_e08_multicost(run_and_record):
    run_and_record("E8")
