"""Observability overhead benchmark — the ≤2% disabled-cost contract.

The obs layer's license to instrument the hot loops is that it costs
(nearly) nothing when off: every site is one ``Optional[Registry]``
predicate check. This bench measures that claim on the same
representative E3 cell the batching trajectory uses (DISTILL vs the
adaptive split-vote adversary at ``n = m``, ``beta = 1/n``), three ways:

* ``obs=off`` — the baseline, no registry anywhere (the default);
* ``obs=on`` — a live :class:`~repro.obs.registry.Registry` through the
  runner and engine (counters + the runner timer);
* bit-identity — the on/off ``per_trial`` arrays are asserted equal
  before any overhead number is reported, so a regression in the
  bit-inertness contract fails the bench, not just the test suite.

Each variant runs ``REPEATS`` times and the *minimum* is compared (the
standard way to de-noise a throughput measurement on a shared box).
Results go to ``BENCH_obs.json`` at the repo root (copy under
``benchmarks/results/``), manifest embedded like every bench artifact.

Run directly (``python benchmarks/bench_obs_overhead.py``) or through
pytest; ``REPRO_BENCH_SCALE=smoke`` shrinks the cell for CI smoke jobs.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from typing import Dict

import numpy as np

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.core.distill import DistillStrategy
from repro.obs.registry import Registry
from repro.sim.engine import EngineConfig
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance

try:  # pytest imports this as benchmarks.bench_obs_overhead
    from benchmarks.artifacts import REPO_ROOT, write_bench_json
except ImportError:  # `python benchmarks/bench_obs_overhead.py`
    from artifacts import REPO_ROOT, write_bench_json

OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_obs.json")

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

#: timing repetitions per variant; min-of-REPEATS is reported
REPEATS = 3 if SCALE == "smoke" else 5

#: the acceptance ceiling for the disabled path, as a fraction
OVERHEAD_BUDGET = 0.02


def _cell(obs):
    if SCALE == "smoke":
        n, trials, alpha = 64, 8, 0.5
    else:
        n, trials, alpha = 2048, 32, 0.2
    beta = 1.0 / n
    return run_trials(
        make_instance=lambda rng: planted_instance(
            n=n, m=n, beta=beta, alpha=alpha, rng=rng
        ),
        make_strategy=DistillStrategy,
        make_adversary=SplitVoteAdversary,
        n_trials=trials,
        seed=SEED,
        config=EngineConfig(max_rounds=500_000),
        n_jobs=1,
        obs=obs,
    )


def measure_overhead() -> Dict[str, object]:
    """Min-of-``REPEATS`` wall time with obs off vs on, plus bit-identity."""
    baseline = _cell(None)

    off_seconds = []
    on_seconds = []
    for _ in range(REPEATS):
        start = time.perf_counter()
        off_result = _cell(None)
        off_seconds.append(time.perf_counter() - start)

        registry = Registry()
        start = time.perf_counter()
        on_result = _cell(registry)
        on_seconds.append(time.perf_counter() - start)

    bit_identical = all(
        np.array_equal(baseline.per_trial[key], result.per_trial[key])
        for result in (off_result, on_result)
        for key in baseline.per_trial
    )
    assert bit_identical, "enabling observability changed seeded results"

    off_best = min(off_seconds)
    on_best = min(on_seconds)
    return {
        "experiment": "E3-representative cell: distill vs split-vote",
        "repeats": REPEATS,
        "off_seconds": off_best,
        "on_seconds": on_best,
        "enabled_overhead_fraction": on_best / off_best - 1.0,
        "bit_identical": bit_identical,
        "counters": registry.counters(),
    }


def main() -> Dict[str, object]:
    data = {
        "schema": "repro-bench-obs/1",
        "generated_unix": time.time(),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "config": {"scale": SCALE, "seed": SEED},
        "overhead": measure_overhead(),
    }
    write_bench_json("BENCH_obs.json", data)

    overhead = data["overhead"]
    print(f"wrote {OUTPUT_PATH}")
    print(
        f"obs off: {overhead['off_seconds']:.3f}s  "
        f"on: {overhead['on_seconds']:.3f}s  "
        f"enabled overhead: {overhead['enabled_overhead_fraction'] * 100:+.2f}%  "
        f"bit_identical={overhead['bit_identical']}"
    )
    return data


def bench_obs_overhead(results_dir):
    """Pytest entry: record the overhead point and enforce the budget.

    The checked budget is on the *enabled* path (the disabled path is the
    baseline itself — its cost is unobservable from inside one process);
    smoke-scale timings on a loaded CI box are too noisy for a 2% claim,
    so the hard gate applies at full scale only.
    """
    data = main()
    assert os.path.exists(OUTPUT_PATH)
    overhead = data["overhead"]
    assert overhead["bit_identical"]
    assert overhead["counters"].get("engine.rounds", 0) > 0
    if SCALE != "smoke":
        assert overhead["enabled_overhead_fraction"] <= OVERHEAD_BUDGET


if __name__ == "__main__":
    main()
