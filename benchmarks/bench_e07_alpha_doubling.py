"""Bench E7 — Section 5.1 guessing alpha.

The halving wrapper vs DISTILL^HP given the true alpha: constant-factor
overhead, always succeeds.

Regenerates the E7 table of EXPERIMENTS.md (archived under
benchmarks/results/E7.txt).
"""


def bench_e07_alpha_doubling(run_and_record):
    run_and_record("E7")
