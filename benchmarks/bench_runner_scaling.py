"""Runner and substrate scaling benchmark — the repo's perf trajectory.

Three measurements, recorded into ``BENCH_runner.json`` at the repo root
(with a copy under ``benchmarks/results/``):

1. **Runner scaling** — a representative E3 cell (DISTILL vs the adaptive
   split-vote adversary at ``beta = 1/n``) timed serially and with a
   process pool (``REPRO_BENCH_JOBS`` workers), asserting the two runs are
   bit-identical before reporting the speedup.
2. **Substrate microbench** — ``counts_in_window`` / ``current_vote_array``
   on a 10k-vote board: the vectorized ledger vs a faithful replica of the
   pre-vectorization Python walks.
3. **Hash chain** — append throughput with the digest forced after every
   post (the old eager behaviour) vs batched ``append_many`` with one
   deferred materialization.

Run directly (``python benchmarks/bench_runner_scaling.py``) or through
pytest (``pytest benchmarks/bench_runner_scaling.py``); the pytest entry is
skipped under ``--benchmark-only`` so the experiment-table bench jobs do
not double-run it. ``REPRO_BENCH_SCALE=smoke`` shrinks every measurement
for CI smoke jobs.

Interpretation notes: the runner speedup is bounded by physical cores
(``host.cpu_count`` is recorded precisely so a flat number on a 1-core
runner is not mistaken for a regression); the substrate and chain ratios
are core-count independent.
"""

from __future__ import annotations

import bisect
import os
import platform
import sys
import time
from typing import Callable, Dict, List

import numpy as np

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.core.distill import DistillStrategy
from repro.sim.engine import EngineConfig
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance

try:  # pytest imports this as benchmarks.bench_runner_scaling
    from benchmarks.artifacts import REPO_ROOT, write_bench_json
except ImportError:  # `python benchmarks/bench_runner_scaling.py`
    from artifacts import REPO_ROOT, write_bench_json

OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_runner.json")

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

#: substrate board size — fixed across scales so the trajectory is comparable
SUBSTRATE_VOTES = 10_000
SUBSTRATE_OBJECTS = 2_000
SUBSTRATE_ROUNDS = 256


def _time_call(fn: Callable[[], object], repeats: int) -> float:
    """Best-of-``repeats`` wall time of one call, in seconds."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _time_per_call(fn: Callable[[], object], target_seconds: float = 0.2) -> float:
    """Mean seconds per call over enough iterations to fill the target."""
    fn()  # warm-up (also populates any memo exactly once per variant)
    start = time.perf_counter()
    single = max(time.perf_counter() - start, 1e-9)
    iterations = max(3, int(target_seconds / single))
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


# ----------------------------------------------------------------------
# 1. Runner scaling (serial vs process pool)
# ----------------------------------------------------------------------
def measure_runner_scaling() -> Dict[str, object]:
    # The hardest cell of E3's FULL sweep (n=4096 at low alpha): big
    # enough that pool startup is noise against ~10s of trial work.
    if SCALE == "smoke":
        n, trials, alpha = 64, 8, 0.5
    else:
        n, trials, alpha = 4096, 32, 0.2
    beta = 1.0 / n

    def cell(n_jobs: int):
        return run_trials(
            make_instance=lambda rng: planted_instance(
                n=n, m=n, beta=beta, alpha=alpha, rng=rng
            ),
            make_strategy=DistillStrategy,
            make_adversary=SplitVoteAdversary,
            n_trials=trials,
            seed=SEED,
            config=EngineConfig(max_rounds=500_000),
            n_jobs=n_jobs,
        )

    start = time.perf_counter()
    serial = cell(1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = cell(JOBS)
    parallel_seconds = time.perf_counter() - start

    bit_identical = all(
        np.array_equal(serial.per_trial[key], parallel.per_trial[key])
        for key in serial.per_trial
    )
    return {
        "experiment": (
            f"E3-representative cell: distill vs split-vote, "
            f"n=m={n}, beta=1/n, alpha={alpha}"
        ),
        "n_trials": trials,
        "n_jobs": JOBS,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": serial_seconds / max(parallel_seconds, 1e-9),
        "bit_identical": bit_identical,
    }


# ----------------------------------------------------------------------
# 2. Substrate microbench (vectorized ledger vs legacy Python walks)
# ----------------------------------------------------------------------
def _py_counts_in_window(
    rounds: List[int],
    objects: List[int],
    n_objects: int,
    start_round: int,
    end_round: int,
) -> List[int]:
    """The pre-vectorization ledger walk, verbatim in shape."""
    counts = [0] * n_objects
    for idx in range(len(objects)):
        if start_round <= rounds[idx] < end_round:
            counts[objects[idx]] += 1
    return counts


def _py_current_vote_array(
    rounds: List[int],
    players: List[int],
    objects: List[int],
    n_players: int,
    before_round: int,
) -> List[int]:
    """The pre-vectorization forward walk to each player's current vote."""
    cutoff = bisect.bisect_left(rounds, before_round)
    result = [-1] * n_players
    for idx in range(cutoff):
        result[players[idx]] = objects[idx]
    return result


def measure_substrate() -> Dict[str, object]:
    n_players = SUBSTRATE_VOTES
    board = Billboard(n_players, SUBSTRATE_OBJECTS)
    rng = np.random.default_rng(SEED)
    targets = rng.integers(SUBSTRATE_OBJECTS, size=n_players)

    rounds_log: List[int] = []
    players_log: List[int] = []
    objects_log: List[int] = []
    per_round = n_players // SUBSTRATE_ROUNDS
    for round_no in range(SUBSTRATE_ROUNDS):
        lo = round_no * per_round
        hi = n_players if round_no == SUBSTRATE_ROUNDS - 1 else lo + per_round
        board.append_many(
            round_no,
            [
                (player, int(targets[player]), 1.0, PostKind.VOTE)
                for player in range(lo, hi)
            ],
        )
        for player in range(lo, hi):
            rounds_log.append(round_no)
            players_log.append(player)
            objects_log.append(int(targets[player]))

    window = (SUBSTRATE_ROUNDS // 4, 3 * SUBSTRATE_ROUNDS // 4)
    horizon = SUBSTRATE_ROUNDS // 2

    expected_counts = np.asarray(
        _py_counts_in_window(
            rounds_log, objects_log, SUBSTRATE_OBJECTS, *window
        ),
        dtype=np.int64,
    )
    assert np.array_equal(board.counts_in_window(*window), expected_counts)
    expected_votes = np.asarray(
        _py_current_vote_array(
            rounds_log, players_log, objects_log, n_players, horizon
        ),
        dtype=np.int64,
    )
    assert np.array_equal(board.current_vote_array(horizon), expected_votes)

    counts_py = _time_per_call(
        lambda: _py_counts_in_window(
            rounds_log, objects_log, SUBSTRATE_OBJECTS, *window
        )
    )
    counts_vec = _time_per_call(lambda: board.counts_in_window(*window))
    votes_py = _time_per_call(
        lambda: _py_current_vote_array(
            rounds_log, players_log, objects_log, n_players, horizon
        )
    )
    votes_vec = _time_per_call(lambda: board.current_vote_array(horizon))

    return {
        "n_votes": len(objects_log),
        "n_objects": SUBSTRATE_OBJECTS,
        "n_rounds": SUBSTRATE_ROUNDS,
        "counts_in_window": {
            "python_seconds_per_call": counts_py,
            "vectorized_seconds_per_call": counts_vec,
            "speedup": counts_py / max(counts_vec, 1e-12),
        },
        "current_vote_array": {
            "python_seconds_per_call": votes_py,
            "vectorized_seconds_per_call": votes_vec,
            "speedup": votes_py / max(votes_vec, 1e-12),
        },
    }


# ----------------------------------------------------------------------
# 3. Hash chain (eager per-post digests vs lazy batched materialization)
# ----------------------------------------------------------------------
def measure_hash_chain() -> Dict[str, object]:
    n_posts = 5_000 if SCALE == "smoke" else 50_000
    n_players = 256
    batch = 128

    def eager() -> Billboard:
        # The pre-lazy behaviour: every append paid one SHA-256 fold.
        # Polling head_digest after each post materializes exactly one
        # pending snapshot, reproducing that cost profile.
        board = Billboard(n_players, n_players)
        for seq in range(n_posts):
            board.append(
                seq // batch, seq % n_players, seq % n_players, 1.0,
                PostKind.REPORT,
            )
            board.head_digest
        return board

    def lazy() -> Billboard:
        # The engine's actual hot path: batched appends, digest never
        # read during the run — all hashing deferred (and skipped unless
        # someone eventually asks).
        board = Billboard(n_players, n_players)
        for start in range(0, n_posts, batch):
            board.append_many(
                start // batch,
                [
                    (seq % n_players, seq % n_players, 1.0, PostKind.REPORT)
                    for seq in range(start, min(start + batch, n_posts))
                ],
            )
        return board

    deferred_board = lazy()
    start = time.perf_counter()
    deferred_digest = deferred_board.head_digest
    materialize_seconds = time.perf_counter() - start
    assert eager().head_digest == deferred_digest  # identical final digests

    eager_seconds = _time_call(eager, repeats=3)
    lazy_seconds = _time_call(lazy, repeats=3)
    return {
        "n_posts": n_posts,
        "batch_size": batch,
        "eager_posts_per_second": n_posts / eager_seconds,
        "lazy_posts_per_second": n_posts / lazy_seconds,
        "deferred_materialize_seconds": materialize_seconds,
        "speedup": eager_seconds / max(lazy_seconds, 1e-12),
    }


# ----------------------------------------------------------------------
def main() -> Dict[str, object]:
    data = {
        "schema": "repro-bench-runner/1",
        "generated_unix": time.time(),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "config": {"scale": SCALE, "jobs": JOBS, "seed": SEED},
        "runner_scaling": measure_runner_scaling(),
        "substrate": measure_substrate(),
        "hash_chain": measure_hash_chain(),
    }
    write_bench_json("BENCH_runner.json", data)

    scaling = data["runner_scaling"]
    substrate = data["substrate"]
    chain = data["hash_chain"]
    print(f"wrote {OUTPUT_PATH}")
    print(
        f"runner: {scaling['serial_seconds']:.2f}s serial -> "
        f"{scaling['parallel_seconds']:.2f}s with n_jobs={scaling['n_jobs']} "
        f"({scaling['speedup']:.2f}x, bit_identical={scaling['bit_identical']}, "
        f"cpu_count={data['host']['cpu_count']})"
    )
    print(
        "substrate: counts_in_window "
        f"{substrate['counts_in_window']['speedup']:.1f}x, "
        "current_vote_array "
        f"{substrate['current_vote_array']['speedup']:.1f}x "
        "vs python walks (10k votes)"
    )
    print(
        f"hash chain: {chain['speedup']:.1f}x posts/sec "
        "(lazy batched vs eager per-post)"
    )
    return data


def bench_runner_scaling(results_dir):
    """Pytest entry: record the trajectory point and sanity-check it."""
    data = main()
    assert os.path.exists(OUTPUT_PATH)
    assert data["runner_scaling"]["bit_identical"]
    assert data["substrate"]["counts_in_window"]["speedup"] > 1.0
    assert data["hash_chain"]["speedup"] > 1.0


if __name__ == "__main__":
    main()
