"""Bench E1 — Theorem 1 collective-work lower bound.

Full-cooperation urn search vs the exact (m+1)/((beta m+1) alpha n) curve
across n and beta sweeps.

Regenerates the E1 table of EXPERIMENTS.md (archived under
benchmarks/results/E1.txt).
"""


def bench_e01_lower_bound_work(run_and_record):
    run_and_record("E1")
