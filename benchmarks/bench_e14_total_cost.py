"""Bench E14 — the prior algorithm's total-cost bound.

Total honest probes of the EC'04 explore/exploit rule on the async
engine: O(n log n) shape at beta = 1/n, indifferent to a dishonest
third.

Regenerates the E14 table of EXPERIMENTS.md (archived under
benchmarks/results/E14.txt).
"""


def bench_e14_total_cost(run_and_record):
    run_and_record("E14")
