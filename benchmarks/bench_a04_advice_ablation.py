"""Bench A4 — advice-mechanism ablation.

DISTILL without the advice half of PROBE&SEEKADVICE: the termination
tail grows (Lemma 6's contribution isolated).

Regenerates the A4 table of EXPERIMENTS.md (archived under
benchmarks/results/A4.txt).
"""


def bench_a04_advice_ablation(run_and_record):
    run_and_record("A4")
