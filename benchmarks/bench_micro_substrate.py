"""Micro-benchmarks of the simulation substrate.

Unlike the experiment benches (one pedantic round each), these measure
the primitives' throughput properly — pytest-benchmark calibrates
multiple rounds — and act as performance-regression tripwires for the
hot paths: ledger window counts, advice resolution, tracker transitions,
and a complete mid-size engine run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.billboard.board import Billboard
from repro.billboard.post import PostKind
from repro.billboard.views import BillboardView
from repro.core.distill import DistillStrategy
from repro.core.parameters import DistillParameters
from repro.core.tracker import DistillPhaseTracker
from repro.sim.engine import SynchronousEngine
from repro.strategies.base import StrategyContext
from repro.strategies.probe_advice import AdviceAlternator
from repro.world.generators import planted_instance

N_PLAYERS = 2048
N_OBJECTS = 2048


@pytest.fixture(scope="module")
def loaded_board():
    """A board carrying one vote per player, spread over 64 rounds."""
    board = Billboard(N_PLAYERS, N_OBJECTS)
    rng = np.random.default_rng(0)
    objects = rng.integers(N_OBJECTS, size=N_PLAYERS)
    for round_no in range(64):  # append-only: rounds must not decrease
        for player in range(round_no, N_PLAYERS, 64):
            board.append(
                round_no, player, int(objects[player]), 1.0, PostKind.VOTE
            )
    return board


def bench_ledger_window_counts(benchmark, loaded_board):
    benchmark(loaded_board.counts_in_window, 16, 48)


def bench_ledger_current_votes(benchmark, loaded_board):
    benchmark(loaded_board.current_vote_array, 32)


def bench_advice_resolution(benchmark, loaded_board):
    view = BillboardView(loaded_board)
    alternator = AdviceAlternator(N_PLAYERS)
    rng = np.random.default_rng(1)
    benchmark(alternator.advise, N_PLAYERS, view, rng)


def bench_explore_sampling(benchmark):
    alternator = AdviceAlternator(N_PLAYERS)
    pool = np.arange(N_OBJECTS, dtype=np.int64)
    rng = np.random.default_rng(2)
    benchmark(alternator.explore, pool, N_PLAYERS, rng)


def bench_tracker_advance(benchmark, loaded_board):
    ctx = StrategyContext(
        n=N_PLAYERS, m=N_OBJECTS, alpha=0.5, beta=1 / 16,
        good_threshold=0.5,
    )

    def advance_through_run():
        tracker = DistillPhaseTracker(ctx, DistillParameters())
        for round_no in range(0, 65, 4):
            tracker.advance(
                round_no, BillboardView(loaded_board, before_round=round_no)
            )

    benchmark(advance_through_run)


def bench_engine_full_run(benchmark):
    def run_once():
        inst = planted_instance(
            n=512, m=512, beta=1 / 16, alpha=0.75,
            rng=np.random.default_rng(3),
        )
        engine = SynchronousEngine(
            inst, DistillStrategy(), rng=np.random.default_rng(4)
        )
        return engine.run().rounds

    benchmark(run_once)
