"""Benchmark artifact locations.

``BENCH_*.json`` trajectory files are the repo's performance record. The
canonical copy lives at the **repo root** — next to README.md, where the
performance tables cite it and CI uploads it — and a second copy is kept
under ``benchmarks/results/`` so the artifact directory that archives the
experiment tables stays complete.

Every artifact written here carries an embedded ``manifest`` key — a
:class:`~repro.obs.manifest.RunManifest` whose ``config_hash`` is taken
over the bench payload itself — so a checked-in number can always be
traced back to the package versions, host, and git revision that
produced it.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
RESULTS_DIR = os.path.join(BENCH_DIR, "results")


def write_bench_json(name: str, data: Dict[str, Any]) -> str:
    """Write one ``BENCH_*.json`` to the repo root and the results dir.

    A ``manifest`` provenance record is embedded into the payload (the
    caller's ``data`` mapping is not mutated). Returns the canonical
    (repo-root) path.
    """
    from repro.obs.manifest import collect_manifest

    payload = dict(data)
    payload["manifest"] = collect_manifest(config_payload=data).to_dict()
    os.makedirs(RESULTS_DIR, exist_ok=True)
    root_path = os.path.join(REPO_ROOT, name)
    for path in (root_path, os.path.join(RESULTS_DIR, name)):
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    return root_path
