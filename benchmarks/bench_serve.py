"""Serving-layer latency benchmark — the billboard under live traffic.

Records ``BENCH_serve.json`` at the repo root (with a copy under
``benchmarks/results/``): a :class:`~repro.serve.service.BillboardService`
subprocess (started exactly as an operator would, ``repro serve
--port 0``) is driven by a deterministic mixed workload — **80% reads /
20% writes** — from concurrent client connections, and per-request
wall-clock latencies are folded into p50/p99 plus a posts-per-second
write throughput figure.

Methodology
-----------
The op *streams* are deterministic: one seeded generator draws every
client's op sequence (read kind, posting player, voted object) up
front, so two runs issue identical requests and the served board ends
in an identical state; only the wall-clock numbers are environmental.
Each client thread owns one connection and measures
``time.perf_counter`` around each round trip — latency as a caller
sees it, queueing included. A driver thread ticks the service epoch at
a fixed op cadence so reads exercise real snapshot/recommender queries,
not an empty board.

The benchmark runs with admission wide open (no rate limit, default
in-flight cap) and asserts **zero load-shed**: at bench concurrency the
service must absorb the offered load, so any shed is a regression, not
noise. The pytest entry and the CI ``serve-smoke`` job additionally
assert a generous p99 ceiling — a smoke alarm for pathological
latency, not an SLO (see ``docs/serving.md`` for the methodology).

Run directly (``python benchmarks/bench_serve.py``) or through pytest
(``pytest benchmarks/bench_serve.py``). ``--smoke`` or
``REPRO_BENCH_SCALE=smoke`` shrinks the workload for CI.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import threading
import time
from typing import Any, Dict, List, Tuple

import numpy as np

try:  # pytest imports this as benchmarks.bench_serve
    from benchmarks.artifacts import REPO_ROOT, write_bench_json
except ImportError:  # `python benchmarks/bench_serve.py`
    from artifacts import REPO_ROOT, write_bench_json

OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_serve.json")

SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

#: fraction of ops that are reads; the rest are posts/votes
READ_FRACTION = 0.8

#: p99 ceiling asserted by the pytest/CI smoke entry (seconds). A smoke
#: alarm for pathological latency, far above any healthy loopback p99.
SMOKE_P99_CEILING_S = 0.5


def _workload(smoke: bool) -> Dict[str, int]:
    if smoke:
        return {"clients": 4, "ops_per_client": 500, "tick_every": 200}
    return {"clients": 8, "ops_per_client": 2_500, "tick_every": 500}


# ----------------------------------------------------------------------
# Service subprocess
# ----------------------------------------------------------------------
def _start_service(
    n_players: int, n_objects: int
) -> Tuple[subprocess.Popen, str, int]:
    """Launch ``repro serve --port 0`` and parse the bound address."""
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--n",
            str(n_players),
            "--m",
            str(n_objects),
            "--port",
            "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    assert proc.stdout is not None
    line = proc.stdout.readline().strip()
    prefix = "serving on "
    if not line.startswith(prefix):
        proc.kill()
        raise RuntimeError(f"service did not announce itself: {line!r}")
    host, port = line[len(prefix) :].rsplit(":", 1)
    return proc, host, int(port)


# ----------------------------------------------------------------------
# Deterministic op streams
# ----------------------------------------------------------------------
def _draw_ops(
    rng: np.random.Generator,
    count: int,
    n_players: int,
    n_objects: int,
) -> List[Tuple[str, int, int]]:
    """One client's op stream: ``(op, player, object)`` tuples."""
    ops: List[Tuple[str, int, int]] = []
    kinds = rng.random(count)
    read_ops = rng.integers(0, 3, size=count)
    players = rng.integers(0, n_players, size=count)
    objects = rng.integers(0, n_objects, size=count)
    for i in range(count):
        if kinds[i] < READ_FRACTION:
            op = ("counts", "recommend", "scores")[int(read_ops[i])]
        else:
            op = "vote"
        ops.append((op, int(players[i]), int(objects[i])))
    return ops


def _run_client(
    host: str,
    port: int,
    ops: List[Tuple[str, int, int]],
    out: Dict[str, Any],
) -> None:
    from repro.errors import LoadShedError
    from repro.serve import ServeClient

    read_lat: List[float] = []
    write_lat: List[float] = []
    shed = 0
    with ServeClient(host, port) as client:
        for op, player, object_id in ops:
            start = time.perf_counter()
            try:
                if op == "vote":
                    client.vote(player, object_id)
                elif op == "counts":
                    client.counts()
                elif op == "recommend":
                    client.recommend(5)
                else:
                    client.scores()
            except LoadShedError:
                shed += 1
                continue
            elapsed = time.perf_counter() - start
            (write_lat if op == "vote" else read_lat).append(elapsed)
    out["read_latencies"] = read_lat
    out["write_latencies"] = write_lat
    out["shed"] = shed


def _percentiles(latencies: List[float]) -> Dict[str, float]:
    arr = np.asarray(latencies, dtype=np.float64)
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
        "mean_ms": float(arr.mean() * 1e3),
        "count": int(arr.size),
    }


# ----------------------------------------------------------------------
def main(smoke: bool = False) -> Dict[str, Any]:
    smoke = smoke or os.environ.get("REPRO_BENCH_SCALE") == "smoke"
    shape = _workload(smoke)
    n_players, n_objects = 4096, 512

    proc, host, port = _start_service(n_players, n_objects)
    try:
        streams = [
            _draw_ops(
                np.random.default_rng([SEED, client]),
                shape["ops_per_client"],
                n_players,
                n_objects,
            )
            for client in range(shape["clients"])
        ]
        results: List[Dict[str, Any]] = [{} for _ in streams]
        threads = [
            threading.Thread(
                target=_run_client,
                args=(host, port, stream, results[i]),
                name=f"bench-serve-client-{i}",
            )
            for i, stream in enumerate(streams)
        ]

        # the ticker drives epochs at a fixed cadence so reads hit a
        # moving recommender; it stops once every client is done
        done = threading.Event()
        ticks = {"count": 0}

        def _ticker() -> None:
            from repro.serve import ServeClient

            interval = shape["tick_every"] / 10_000.0
            with ServeClient(host, port) as client:
                while not done.is_set():
                    client.tick()
                    ticks["count"] += 1
                    done.wait(interval)

        ticker = threading.Thread(target=_ticker, name="bench-serve-ticker")

        wall_start = time.perf_counter()
        ticker.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        done.set()
        ticker.join()
        elapsed = time.perf_counter() - wall_start

        from repro.serve import ServeClient

        with ServeClient(host, port) as client:
            final_metrics = client.metrics()
            client.shutdown()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()

    reads = [lat for res in results for lat in res["read_latencies"]]
    writes = [lat for res in results for lat in res["write_latencies"]]
    shed = sum(res["shed"] for res in results)
    total_ops = len(reads) + len(writes) + shed

    data = {
        "schema": "repro-bench-serve/1",
        "generated_unix": time.time(),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "config": {
            "smoke": smoke,
            "seed": SEED,
            "n_players": n_players,
            "n_objects": n_objects,
            "read_fraction": READ_FRACTION,
            **shape,
        },
        "elapsed_seconds": elapsed,
        "ticks": ticks["count"],
        "total_ops": total_ops,
        "shed": shed,
        "requests_per_second": total_ops / max(elapsed, 1e-9),
        "posts_per_second": len(writes) / max(elapsed, 1e-9),
        "read": _percentiles(reads),
        "write": _percentiles(writes),
        "serve_counters": {
            name: value
            for name, value in final_metrics["counters"].items()
            if name.startswith("serve.")
        },
        "inflight_peak": final_metrics["inflight_peak"],
        "final_epoch": final_metrics["epoch"],
        "board_posts": final_metrics["posts"],
    }
    write_bench_json("BENCH_serve.json", data)

    print(f"wrote {OUTPUT_PATH}")
    print(
        f"{shape['clients']} clients x {shape['ops_per_client']} ops "
        f"({READ_FRACTION:.0%} reads) in {elapsed:.2f}s, "
        f"{data['ticks']} epochs"
    )
    print(
        f"read  p50={data['read']['p50_ms']:.2f}ms "
        f"p99={data['read']['p99_ms']:.2f}ms ({data['read']['count']} ops)"
    )
    print(
        f"write p50={data['write']['p50_ms']:.2f}ms "
        f"p99={data['write']['p99_ms']:.2f}ms ({data['write']['count']} ops)"
    )
    print(
        f"{data['requests_per_second']:.0f} req/s, "
        f"{data['posts_per_second']:.0f} posts/s, shed={shed}"
    )
    return data


def bench_serve(results_dir):
    """Pytest entry: smoke workload, p99 ceiling, zero shed."""
    data = main(smoke=True)
    assert os.path.exists(OUTPUT_PATH)
    assert data["shed"] == 0, f"load shed under smoke load: {data['shed']}"
    assert data["read"]["p99_ms"] <= SMOKE_P99_CEILING_S * 1e3
    assert data["write"]["p99_ms"] <= SMOKE_P99_CEILING_S * 1e3
    assert data["posts_per_second"] > 0
    assert data["serve_counters"]["serve.shed"] == 0


if __name__ == "__main__":
    cli = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    cli.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized workload (also: REPRO_BENCH_SCALE=smoke)",
    )
    parsed = cli.parse_args()
    result = main(smoke=parsed.smoke)
    payload = json.dumps(
        {"p99_read_ms": result["read"]["p99_ms"], "shed": result["shed"]}
    )
    print(f"summary {payload}")
