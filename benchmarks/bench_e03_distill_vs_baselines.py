"""Bench E3 — Theorem 4 headline comparison.

Needle-in-a-haystack worlds (m = n, one good object): DISTILL vs the
prior asynchronous algorithm vs trivial probing, under the adaptive
split-vote adversary.

Regenerates the E3 table of EXPERIMENTS.md (archived under
benchmarks/results/E3.txt).
"""


def bench_e03_distill_vs_baselines(run_and_record):
    run_and_record("E3")
