"""Million-player scale benchmark — dense vs sparse substrate memory.

Records ``BENCH_scale.json`` at the repo root (with a copy under
``benchmarks/results/``): an E3-style sweep (DISTILL vs the adaptive
split-vote adversary at ``beta = 1/n``, ``m = n``) over player counts,
run once per substrate, measuring **incremental peak RSS** and rounds
per second for each cell.

Methodology
-----------
Every cell runs in its own subprocess so ``ru_maxrss`` reflects exactly
one run; a null subprocess (same imports, no cell) is measured first and
subtracted, so the reported number is the cell's *incremental* peak RSS,
not interpreter + numpy overhead. Dense cells are measured at the small
end of the sweep and fitted linearly in ``n``; the fit is extrapolated
to the large-``n`` cells where allocating dense per-player state would
be wasteful or impossible. The headline criterion — sparse at
``n = 10^5`` must sit at least ``RSS_RATIO_FLOOR``× below the dense
extrapolation — is asserted by the pytest entry and by the CI
``scale-smoke`` job.

Cells that both substrates run (the overlap of the dense and sparse
sweeps) must produce bit-identical run digests: the substrate knob is
bit-inert, and this benchmark re-proves it at scale on every run. Each
cell also snapshots its ``substrate.*`` observability counters; any
``substrate.fallback`` is a hard failure.

Run directly (``python benchmarks/bench_scale.py``) or through pytest
(``pytest benchmarks/bench_scale.py``). ``REPRO_BENCH_SCALE=smoke``
shrinks the sweep for CI smoke jobs (sparse stops at ``n = 10^5``);
the full sweep adds ``n ∈ {5·10^5, 10^6}`` sparse cells.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import resource
import subprocess
import sys
import time
from typing import Dict, List, Optional

import numpy as np

try:  # pytest imports this as benchmarks.bench_scale
    from benchmarks.artifacts import REPO_ROOT, write_bench_json
except ImportError:  # `python benchmarks/bench_scale.py`
    from artifacts import REPO_ROOT, write_bench_json

OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_scale.json")

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

#: acceptance floor: sparse incremental RSS at the headline cell must be
#: at least this many times below the dense linear-fit extrapolation
RSS_RATIO_FLOOR = 5.0
#: the cell the floor is asserted on
HEADLINE_N = 100_000

if SCALE == "smoke":
    DENSE_NS = [10_000, 30_000]
    SPARSE_NS = [10_000, 100_000]
else:
    DENSE_NS = [10_000, 30_000, 100_000]
    SPARSE_NS = [10_000, 100_000, 500_000, 1_000_000]


# ----------------------------------------------------------------------
# Child process: one cell, one JSON line
# ----------------------------------------------------------------------
def _run_cell(n: int, substrate: str, seed: int) -> Dict[str, object]:
    """Run one E3-style cell and report peak RSS + a run digest."""
    from repro.adversaries.split_vote import SplitVoteAdversary
    from repro.core.distill import DistillStrategy
    from repro.obs.registry import Registry
    from repro.sim.engine import EngineConfig, SynchronousEngine
    from repro.world.generators import planted_instance

    world, honest, adversary, _faults = np.random.SeedSequence(seed).spawn(4)
    instance = planted_instance(
        n=n, m=n, beta=1.0 / n, alpha=0.75, rng=np.random.default_rng(world)
    )
    registry = Registry()
    engine = SynchronousEngine(
        instance,
        DistillStrategy(),
        adversary=SplitVoteAdversary(),
        rng=np.random.default_rng(honest),
        adversary_rng=np.random.default_rng(adversary),
        config=EngineConfig(max_rounds=100_000, record_reports=True),
        obs=registry,
        substrate=substrate,
    )
    start = time.perf_counter()
    metrics = engine.run()
    elapsed = time.perf_counter() - start

    digest = hashlib.sha256()
    for array in (
        metrics.honest_mask,
        metrics.probes,
        metrics.paid,
        metrics.satisfied_round,
        metrics.halted_round,
    ):
        digest.update(np.ascontiguousarray(array).tobytes())
    digest.update(str(metrics.rounds).encode())

    counters = registry.snapshot()["counters"]
    return {
        "n": n,
        "substrate": substrate,
        "resolved_substrate": engine.substrate,
        "seed": seed,
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "elapsed_seconds": elapsed,
        "rounds": metrics.rounds,
        "posts": len(engine.board),
        "all_honest_satisfied": bool(metrics.all_honest_satisfied),
        "digest": digest.hexdigest(),
        "substrate_counters": {
            key: value
            for key, value in counters.items()
            if key.startswith("substrate.")
        },
    }


def _run_null() -> Dict[str, object]:
    """Import everything a cell imports, allocate nothing, report RSS."""
    import repro.adversaries.split_vote  # noqa: F401
    import repro.core.distill  # noqa: F401
    import repro.obs.registry  # noqa: F401
    import repro.sim.engine  # noqa: F401
    import repro.world.generators  # noqa: F401

    return {
        "ru_maxrss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    }


def _child_main(argv: List[str]) -> None:
    if argv[0] == "--null":
        payload = _run_null()
    else:  # --cell <n> <substrate> <seed>
        _, n, substrate, seed = argv
        payload = _run_cell(int(n), substrate, int(seed))
    json.dump(payload, sys.stdout)
    sys.stdout.write("\n")


# ----------------------------------------------------------------------
# Parent process: sweep, fit, criterion
# ----------------------------------------------------------------------
def _spawn(args: List[str]) -> Dict[str, object]:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), *args],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(proc.stdout.strip().splitlines()[-1])


def _measure_cell(
    n: int, substrate: str, baseline_kb: int
) -> Dict[str, object]:
    cell = _spawn(["--cell", str(n), substrate, str(SEED)])
    cell["incremental_rss_kb"] = max(
        0, int(cell["ru_maxrss_kb"]) - baseline_kb
    )
    cell["rounds_per_second"] = cell["rounds"] / max(
        cell["elapsed_seconds"], 1e-9
    )
    return cell


def _linear_fit(ns: List[int], rss_kb: List[int]):
    slope, intercept = np.polyfit(
        np.asarray(ns, dtype=np.float64),
        np.asarray(rss_kb, dtype=np.float64),
        1,
    )
    return float(slope), float(intercept)


def main() -> Dict[str, object]:
    baseline = _spawn(["--null"])
    baseline_kb = int(baseline["ru_maxrss_kb"])
    print(f"null baseline: {baseline_kb} KB peak RSS")

    dense_cells = []
    for n in DENSE_NS:
        cell = _measure_cell(n, "dense", baseline_kb)
        dense_cells.append(cell)
        print(
            f"dense  n={n:>9,}: {cell['incremental_rss_kb']:>9,} KB, "
            f"{cell['rounds']} rounds, "
            f"{cell['rounds_per_second']:.1f} rounds/s"
        )
    sparse_cells = []
    for n in SPARSE_NS:
        cell = _measure_cell(n, "sparse", baseline_kb)
        sparse_cells.append(cell)
        print(
            f"sparse n={n:>9,}: {cell['incremental_rss_kb']:>9,} KB, "
            f"{cell['rounds']} rounds, "
            f"{cell['rounds_per_second']:.1f} rounds/s"
        )

    for cell in dense_cells + sparse_cells:
        fallbacks = cell["substrate_counters"].get("substrate.fallback", 0)
        assert fallbacks == 0, (
            f"cell n={cell['n']} {cell['substrate']} fell back: "
            f"{cell['substrate_counters']}"
        )
        assert cell["resolved_substrate"] == cell["substrate"], cell

    # bit-identity on every overlapping cell: the substrate knob must
    # not change a single output bit, even at scale
    sparse_by_n = {cell["n"]: cell for cell in sparse_cells}
    overlap_checked = []
    for cell in dense_cells:
        twin = sparse_by_n.get(cell["n"])
        if twin is None:
            continue
        assert cell["digest"] == twin["digest"], (
            f"substrate changed the run at n={cell['n']}: "
            f"dense {cell['digest'][:12]} != sparse {twin['digest'][:12]}"
        )
        overlap_checked.append(cell["n"])

    slope, intercept = _linear_fit(
        [cell["n"] for cell in dense_cells],
        [cell["incremental_rss_kb"] for cell in dense_cells],
    )

    def dense_fit(n: int) -> float:
        return slope * n + intercept

    headline: Optional[Dict[str, object]] = None
    for cell in sparse_cells:
        cell["dense_fit_rss_kb"] = dense_fit(cell["n"])
        cell["rss_ratio_vs_dense_fit"] = cell["dense_fit_rss_kb"] / max(
            cell["incremental_rss_kb"], 1
        )
        if cell["n"] == HEADLINE_N:
            headline = cell

    assert headline is not None, f"sweep must include n={HEADLINE_N}"

    data = {
        "schema": "repro-bench-scale/1",
        "generated_unix": time.time(),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "config": {
            "scale": SCALE,
            "seed": SEED,
            "cell": "E3: DISTILL vs split-vote, beta=1/n, m=n, "
            "record_reports=on",
            "rss_ratio_floor": RSS_RATIO_FLOOR,
            "headline_n": HEADLINE_N,
        },
        "null_baseline_kb": baseline_kb,
        "dense": dense_cells,
        "sparse": sparse_cells,
        "dense_fit": {
            "slope_kb_per_player": slope,
            "intercept_kb": intercept,
            "fit_ns": [cell["n"] for cell in dense_cells],
        },
        "bit_identical_overlap_ns": overlap_checked,
        "headline": {
            "n": HEADLINE_N,
            "sparse_rss_kb": headline["incremental_rss_kb"],
            "dense_fit_rss_kb": headline["dense_fit_rss_kb"],
            "ratio": headline["rss_ratio_vs_dense_fit"],
            "meets_floor": headline["rss_ratio_vs_dense_fit"]
            >= RSS_RATIO_FLOOR,
        },
    }
    write_bench_json("BENCH_scale.json", data)

    print(f"wrote {OUTPUT_PATH}")
    print(
        f"dense fit: {slope:.3f} KB/player "
        f"(+{intercept:.0f} KB) over n={DENSE_NS}"
    )
    print(
        f"headline n={HEADLINE_N:,}: sparse "
        f"{data['headline']['sparse_rss_kb']:,} KB vs dense fit "
        f"{data['headline']['dense_fit_rss_kb']:,.0f} KB "
        f"({data['headline']['ratio']:.1f}x, "
        f"floor {RSS_RATIO_FLOOR}x, "
        f"meets_floor={data['headline']['meets_floor']})"
    )
    print(f"bit-identical overlap cells: n={overlap_checked}")
    return data


def bench_scale(results_dir):
    """Pytest entry: record the scale point and assert the criterion."""
    data = main()
    assert os.path.exists(OUTPUT_PATH)
    assert data["headline"]["meets_floor"]
    assert data["bit_identical_overlap_ns"]
    for cell in data["sparse"]:
        assert cell["all_honest_satisfied"]


if __name__ == "__main__":
    if len(sys.argv) > 1:
        _child_main(sys.argv[1:])
    else:
        main()
