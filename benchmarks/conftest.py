"""Shared plumbing for the benchmark suite.

Each bench regenerates one experiment of DESIGN.md's index at FULL scale,
asserts its shape checks, prints the rendered table (run pytest with
``-s`` or ``-rA`` to see it), and archives it under
``benchmarks/results/`` so EXPERIMENTS.md can cite the artifacts.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_experiment
from repro.experiments.config import JOBS_ENV_VAR, Scale, set_default_n_jobs

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: scale used by the bench suite; set REPRO_BENCH_SCALE=smoke for a quick
#: pass (e.g. on CI smoke jobs)
BENCH_SCALE = Scale(os.environ.get("REPRO_BENCH_SCALE", "full"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
#: Monte-Carlo worker processes for every experiment bench; results are
#: bit-identical for any value (see repro.sim.runner.run_trials)
BENCH_JOBS = int(os.environ.get(JOBS_ENV_VAR, "1"))
set_default_n_jobs(BENCH_JOBS)


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def run_and_record(benchmark, results_dir):
    """Benchmark one experiment end-to-end and archive its table."""

    def runner(experiment_id: str):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": BENCH_SCALE, "seed": BENCH_SEED},
            iterations=1,
            rounds=1,
        )
        rendered = result.render()
        print()
        print(rendered)
        path = os.path.join(results_dir, f"{experiment_id}.txt")
        with open(path, "w") as handle:
            handle.write(rendered + "\n")
        failed = [k for k, ok in result.checks.items() if not ok]
        assert not failed, f"{experiment_id} shape checks failed: {failed}"
        return result

    return runner
