"""Executor-fabric benchmark — backend overhead and chaos recovery.

Two measurements, recorded into ``BENCH_exec.json`` at the repo root
(copy under ``benchmarks/results/``):

* ``backend_matrix`` — one representative E3 cell (DISTILL vs the
  adaptive split-vote adversary) swept on every execution backend:
  serial (the pinned reference), the forked local pool, and TCP socket
  workers. Every backend's ``per_trial`` arrays are asserted
  bit-identical to the serial run before any timing is reported, so
  the table measures pure dispatch overhead, never drift.
* ``chaos_recovery`` — the same cell on the socket backend with a
  deterministic :class:`~repro.exec.chaos.ChaosPlan` killing workers
  mid-sweep. Bit-identity is asserted again (the fabric's acceptance
  criterion: killed workers lose nothing), and the realized recovery
  trail — worker losses, lease reassignments, retries, ``exec.*``
  counters — is recorded alongside the wall-clock cost of recovering.

Run directly (``python benchmarks/bench_exec_fabric.py``) or through
pytest; ``REPRO_BENCH_SCALE=smoke`` shrinks the cell for CI smoke jobs.

Interpretation notes: the socket backend pays worker spawn + TCP framing
per sweep, so on short sweeps its overhead dominates (the backend exists
for fault tolerance and multi-host fan-out, not single-host speed); the
local pool is bounded by physical cores exactly like ``n_jobs`` in
``BENCH_runner.json`` (``host.cpu_count`` is recorded for this reason).
The ``bit_identical: true`` lines are the acceptance property and hold
on any host.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from typing import Dict, Optional

import numpy as np

from repro.adversaries.split_vote import SplitVoteAdversary
from repro.core.distill import DistillStrategy
from repro.exec import ChaosPlan, RetryPolicy, SocketWorkerExecutor
from repro.obs.registry import Registry
from repro.sim.engine import EngineConfig
from repro.sim.runner import run_trials
from repro.world.generators import planted_instance

try:  # pytest imports this as benchmarks.bench_exec_fabric
    from benchmarks.artifacts import REPO_ROOT, write_bench_json
except ImportError:  # `python benchmarks/bench_exec_fabric.py`
    from artifacts import REPO_ROOT, write_bench_json

OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_exec.json")

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "2"))
WORKERS = int(os.environ.get("REPRO_EXEC_WORKERS", "2"))

#: the deterministic kill schedule for the recovery measurement — the
#: same plan shape the equivalence tests pin (at least one worker dies)
CHAOS = ChaosPlan(kill_rate=0.5, max_events=2, seed=7)


def _socket_executor(chaos: Optional[ChaosPlan] = None) -> SocketWorkerExecutor:
    return SocketWorkerExecutor(
        n_workers=WORKERS,
        lease_timeout=5.0,
        heartbeat_interval=0.25,
        retry=RetryPolicy(max_retries=4, backoff_base=0.0),
        chaos=chaos,
    )


def _cell(executor, obs=None, n_jobs=None):
    if SCALE == "smoke":
        n, trials, alpha = 64, 8, 0.5
    else:
        n, trials, alpha = 1024, 32, 0.2
    beta = 1.0 / n
    return run_trials(
        make_instance=lambda rng: planted_instance(
            n=n, m=n, beta=beta, alpha=alpha, rng=rng
        ),
        make_strategy=DistillStrategy,
        make_adversary=SplitVoteAdversary,
        n_trials=trials,
        seed=SEED,
        config=EngineConfig(max_rounds=500_000),
        n_jobs=n_jobs,
        executor=executor,
        obs=obs,
    ), trials


def _assert_identical(reference, candidate, label: str) -> bool:
    identical = set(reference.per_trial) == set(candidate.per_trial) and all(
        np.array_equal(reference.per_trial[key], candidate.per_trial[key])
        for key in reference.per_trial
    )
    assert identical, f"{label} diverged from the serial reference"
    return identical


def measure_backend_matrix() -> Dict[str, object]:
    start = time.perf_counter()
    reference, trials = _cell("serial")
    serial_seconds = time.perf_counter() - start

    points = [
        {
            "backend": "serial",
            "seconds": serial_seconds,
            "seconds_per_trial": serial_seconds / trials,
            "speedup_vs_serial": 1.0,
            "bit_identical": True,
        }
    ]
    for backend, kwargs in (
        ("local", {"n_jobs": JOBS}),
        ("socket", {}),
    ):
        executor = _socket_executor() if backend == "socket" else backend
        start = time.perf_counter()
        result, _ = _cell(executor, **kwargs)
        seconds = time.perf_counter() - start
        points.append(
            {
                "backend": backend,
                "seconds": seconds,
                "seconds_per_trial": seconds / trials,
                "speedup_vs_serial": serial_seconds / max(seconds, 1e-9),
                "bit_identical": _assert_identical(reference, result, backend),
            }
        )

    if SCALE == "smoke":
        experiment = (
            "E3-representative cell: distill vs split-vote, "
            "n=m=64, beta=1/n, alpha=0.5"
        )
    else:
        experiment = (
            "E3-representative cell: distill vs split-vote, "
            "n=m=1024, beta=1/n, alpha=0.2"
        )
    return {
        "experiment": experiment,
        "n_trials": trials,
        "n_jobs": JOBS,
        "n_workers": WORKERS,
        "points": points,
    }


def measure_chaos_recovery() -> Dict[str, object]:
    start = time.perf_counter()
    reference, trials = _cell("serial")
    serial_seconds = time.perf_counter() - start

    registry = Registry()
    start = time.perf_counter()
    chaotic, _ = _cell(_socket_executor(chaos=CHAOS), obs=registry)
    chaos_seconds = time.perf_counter() - start

    bit_identical = _assert_identical(reference, chaotic, "chaos-killed socket")
    report = chaotic.manifest.executor
    counters = {
        name: value
        for name, value in sorted(registry.counters().items())
        if name.startswith("exec.")
    }
    return {
        "chaos_plan": {
            "kill_rate": CHAOS.kill_rate,
            "max_events": CHAOS.max_events,
            "seed": CHAOS.seed,
        },
        "n_trials": trials,
        "n_workers": WORKERS,
        "serial_seconds": serial_seconds,
        "chaos_seconds": chaos_seconds,
        "recovery_overhead_vs_serial": chaos_seconds / max(serial_seconds, 1e-9),
        "bit_identical": bit_identical,
        "worker_losses": report["worker_losses"],
        "reassignments": report["reassignments"],
        "retries": report["retries"],
        "exec_counters": counters,
    }


def main() -> Dict[str, object]:
    data = {
        "schema": "repro-bench-exec/1",
        "generated_unix": time.time(),
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
        },
        "config": {
            "scale": SCALE,
            "seed": SEED,
            "jobs": JOBS,
            "workers": WORKERS,
        },
        "backend_matrix": measure_backend_matrix(),
        "chaos_recovery": measure_chaos_recovery(),
    }
    write_bench_json("BENCH_exec.json", data)

    print(f"wrote {OUTPUT_PATH}")
    print("backend_matrix:")
    for point in data["backend_matrix"]["points"]:
        print(
            f"  {point['backend']:>6}: {point['seconds']:7.2f}s "
            f"({point['seconds_per_trial'] * 1e3:8.1f} ms/trial, "
            f"{point['speedup_vs_serial']:5.2f}x vs serial, "
            f"bit_identical={point['bit_identical']})"
        )
    chaos = data["chaos_recovery"]
    print(
        f"chaos_recovery: {chaos['chaos_seconds']:.2f}s with "
        f"{chaos['worker_losses']} worker(s) killed and "
        f"{len(chaos['reassignments'])} reassignment(s) "
        f"({chaos['recovery_overhead_vs_serial']:.2f}x vs "
        f"{chaos['serial_seconds']:.2f}s serial, "
        f"bit_identical={chaos['bit_identical']})"
    )
    return data


def bench_exec_fabric(results_dir):
    """Pytest entry: record the fabric point and sanity-check it."""
    data = main()
    assert os.path.exists(OUTPUT_PATH)
    assert all(p["bit_identical"] for p in data["backend_matrix"]["points"])
    chaos = data["chaos_recovery"]
    assert chaos["bit_identical"]
    # the recovery path must actually have been exercised
    assert chaos["worker_losses"] >= 1
    assert chaos["exec_counters"].get("exec.reassigned", 0) >= 1


if __name__ == "__main__":
    main()
