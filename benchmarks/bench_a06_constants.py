"""Bench A6 — sensitivity to the Figure 1 constants.

A (k1, k2) grid against the adaptive split-vote adversary: the cost bowl
is wide around small constants; the proof's k2 >= 192 overpays by an
order of magnitude.

Regenerates the A6 table of EXPERIMENTS.md (archived under
benchmarks/results/A6.txt).
"""


def bench_a06_constants(run_and_record):
    run_and_record("A6")
