"""Bench E2 — Theorem 2 symmetry lower bound.

DISTILL and the prior algorithm on the partition distribution {I_k};
player 0's probes never dip below the B/2 floor.

Regenerates the E2 table of EXPERIMENTS.md (archived under
benchmarks/results/E2.txt).
"""


def bench_e02_lower_bound_symmetry(run_and_record):
    run_and_record("E2")
