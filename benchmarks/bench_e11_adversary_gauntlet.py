"""Bench E11 — Adversary gauntlet.

DISTILL vs every registered adversary at two honesty levels; Theorem 4
holds for all of them.

Regenerates the E11 table of EXPERIMENTS.md (archived under
benchmarks/results/E11.txt).
"""


def bench_e11_adversary_gauntlet(run_and_record):
    run_and_record("E11")
