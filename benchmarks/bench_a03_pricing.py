"""Bench A3 — demand pricing.

Probe prices rising with vote counts: time untouched, payments scale
with the premium, late finishers pay most.

Regenerates the A3 table of EXPERIMENTS.md (archived under
benchmarks/results/A3.txt).
"""


def bench_a03_pricing(run_and_record):
    run_and_record("A3")
