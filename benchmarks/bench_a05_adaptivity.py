"""Bench A5 — oblivious vs adaptive adversaries.

The adaptive split-vote adversary vs its precommitted oblivious twin:
the adaptivity premium is below measurement resolution at engine scale
(Step 1 dominates and its schedule is deterministic).

Regenerates the A5 table of EXPERIMENTS.md (archived under
benchmarks/results/A5.txt).
"""


def bench_a05_adaptivity(run_and_record):
    run_and_record("A5")
