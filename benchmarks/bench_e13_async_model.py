"""Bench E13 — the synchronous abstraction, validated.

The prior algorithm native on the asynchronous engine under round robin
matches the synchronous engine; DISTILL through the timestamp barrier
matches synchronous DISTILL under a random schedule; the solo-first
schedule degenerates the victim to Theta(1/beta) solo search.

Regenerates the E13 table of EXPERIMENTS.md (archived under
benchmarks/results/E13.txt).
"""


def bench_e13_async_model(run_and_record):
    run_and_record("E13")
